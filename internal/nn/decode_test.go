package nn

import (
	"errors"
	"testing"

	"nora/internal/rng"
)

// greedySequential decodes a reference continuation with the sequential
// Generator: prefill then greedy steps, collecting every logits row.
func greedySequential(r *Runner, prompt []int, n int) ([][]float32, []int) {
	g := NewGenerator(r)
	logits := g.Prefill(prompt)
	rows := [][]float32{append([]float32(nil), logits...)}
	var toks []int
	for i := 0; i < n; i++ {
		next := argmax(logits)
		toks = append(toks, next)
		if g.Pos() >= r.Model().Cfg.MaxSeq {
			break
		}
		logits = g.Append(next)
		rows = append(rows, append([]float32(nil), logits...))
	}
	return rows, toks
}

// The batched continuous decode must be bit-identical per sequence to the
// sequential Generator, across batch compositions and arrival orders:
// sequences are admitted staggered, stepped together, and retired at
// different times, and every logits row must equal the sequential run's
// row exactly (float bit equality, not tolerance).
func TestBatchGeneratorMatchesSequential(t *testing.T) {
	for _, cfg := range []Config{optConfig(), llamaConfig()} {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			m, err := NewModel(cfg, rng.New(810))
			if err != nil {
				t.Fatal(err)
			}
			r := NewRunner(m)
			prompts := [][]int{
				{5, 1, 29, 8},
				{2, 2},
				{7, 0, 3, 3, 11, 24, 9},
				{30},
			}
			const steps = 6
			want := make([][][]float32, len(prompts))
			for i, p := range prompts {
				want[i], _ = greedySequential(r, p, steps)
			}

			bg := NewBatchGenerator(r, 3)
			// Staggered schedule: admit 0 and 1, step twice, retire 1 early,
			// admit 2, finish 0, admit 3 into 0's freed slot. next[i] is the
			// sequence's pending token, got[i] the logits rows seen so far.
			slot := make(map[int]int) // seq -> slot
			next := make(map[int]int) // seq -> pending token
			emit := make(map[int]int) // seq -> rows checked
			check := func(seq int, row []float32) {
				w := want[seq][emit[seq]]
				for j := range row {
					if row[j] != w[j] {
						t.Fatalf("seq %d row %d col %d: batched %v != sequential %v", seq, emit[seq], j, row[j], w[j])
					}
				}
				emit[seq]++
			}
			admit := func(seq int) {
				s, logits, err := bg.Admit(prompts[seq], "")
				if err != nil {
					t.Fatalf("admit seq %d: %v", seq, err)
				}
				slot[seq] = s
				check(seq, logits)
				next[seq] = argmax(logits)
			}
			step := func(seqs ...int) {
				ids := make([]int, len(seqs))
				toks := make([]int, len(seqs))
				for i, q := range seqs {
					ids[i] = slot[q]
					toks[i] = next[q]
				}
				logits, err := bg.Step(ids, toks)
				if err != nil {
					t.Fatalf("step %v: %v", seqs, err)
				}
				for i, q := range seqs {
					check(q, logits.Row(i))
					next[q] = argmax(logits.Row(i))
				}
			}

			admit(0)
			admit(1)
			step(0, 1)
			step(1, 0) // arrival order within the batch must not matter
			bg.Release(slot[1])
			admit(2)
			step(2, 0)
			step(0, 2)
			step(0, 2)
			step(0, 2)
			bg.Release(slot[0])
			admit(3)
			step(3, 2)
			if bg.Free() != 1 {
				t.Fatalf("free slots = %d, want 1", bg.Free())
			}
		})
	}
}

func TestBatchGeneratorErrors(t *testing.T) {
	cfg := optConfig()
	cfg.MaxSeq = 6
	m, _ := NewModel(cfg, rng.New(811))
	bg := NewBatchGenerator(NewRunner(m), 2)

	if _, _, err := bg.Admit(nil, ""); !errors.Is(err, ErrEmptyPrompt) {
		t.Fatalf("empty prompt: %v", err)
	}
	if _, _, err := bg.Admit([]int{1, 2, 3, 4, 5, 6, 7}, ""); !errors.Is(err, ErrCacheFull) {
		t.Fatalf("over-long prompt: %v", err)
	}
	var tre *TokenRangeError
	if _, _, err := bg.Admit([]int{1, 999}, ""); !errors.As(err, &tre) {
		t.Fatalf("bad token: %v", err)
	}
	if bg.Free() != 2 {
		t.Fatalf("failed admits must not consume slots, free = %d", bg.Free())
	}

	s0, _, err := bg.Admit([]int{1, 2}, "")
	if err != nil {
		t.Fatal(err)
	}
	s1, _, err := bg.Admit([]int{3}, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := bg.Admit([]int{4}, ""); !errors.Is(err, ErrNoFreeSlot) {
		t.Fatalf("full generator: %v", err)
	}
	if _, err := bg.Step([]int{s0}, []int{999}); err == nil {
		t.Fatal("out-of-range step token must error")
	}
	if _, err := bg.Step([]int{5}, []int{1}); err == nil {
		t.Fatal("inactive slot must error")
	}
	bg.Release(s1)
	if _, err := bg.Step([]int{s1}, []int{1}); err == nil {
		t.Fatal("released slot must error")
	}
	// Fill slot 0's cache, then the step must report ErrCacheFull.
	for bg.Pos(s0) < cfg.MaxSeq {
		if _, err := bg.Step([]int{s0}, []int{1}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := bg.Step([]int{s0}, []int{1}); !errors.Is(err, ErrCacheFull) {
		t.Fatalf("full cache: %v", err)
	}
}

func TestGeneratorCheckedErrors(t *testing.T) {
	cfg := optConfig()
	cfg.MaxSeq = 4
	m, _ := NewModel(cfg, rng.New(812))
	g := NewGenerator(NewRunner(m))

	var tre *TokenRangeError
	if _, err := g.AppendChecked(-1); !errors.As(err, &tre) {
		t.Fatalf("bad token: %v", err)
	}
	if _, err := g.PrefillChecked(nil); !errors.Is(err, ErrEmptyPrompt) {
		t.Fatalf("empty prompt: %v", err)
	}
	if _, err := g.PrefillChecked([]int{1, 2, 3, 4, 5}); !errors.Is(err, ErrCacheFull) {
		t.Fatalf("over-capacity prompt: %v", err)
	}
	if g.Pos() != 0 {
		t.Fatalf("failed calls must not advance pos, got %d", g.Pos())
	}
	if _, err := g.PrefillChecked([]int{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AppendChecked(1); !errors.Is(err, ErrCacheFull) {
		t.Fatalf("append past MaxSeq: %v", err)
	}
}

// The decode step must be allocation-free in steady state (satellite of the
// continuous-batching PR): pooled activations, pooled logits, pooled
// matrix headers. Guarded here for the digital path; the analog path's
// scratch is gated by the existing analog 0-alloc tests.
func TestDecodeStepAllocs(t *testing.T) {
	cfg := optConfig()
	cfg.MaxSeq = 512
	m, _ := NewModel(cfg, rng.New(813))
	g := NewGenerator(NewRunner(m))
	g.Append(1) // warm the scratch
	allocs := testing.AllocsPerRun(200, func() {
		if g.Pos() >= cfg.MaxSeq {
			g.Reset()
		}
		g.Append(2)
	})
	if allocs != 0 {
		t.Fatalf("decode step allocates %v times in steady state, want 0", allocs)
	}
}

// BenchmarkDecodeStepAllocs is the benchmark face of the alloc gate: run
// with -benchmem to see steady-state decode allocations (0 allocs/op).
func BenchmarkDecodeStepAllocs(b *testing.B) {
	cfg := optConfig()
	cfg.MaxSeq = 512
	m, _ := NewModel(cfg, rng.New(814))
	g := NewGenerator(NewRunner(m))
	g.Append(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if g.Pos() >= cfg.MaxSeq {
			g.Reset()
		}
		g.Append(2)
	}
}
