package nn

import (
	"errors"
	"testing"

	"nora/internal/rng"
)

// greedySequential decodes a reference continuation with the sequential
// Generator: prefill then greedy steps, collecting every logits row.
func greedySequential(r *Runner, prompt []int, n int) ([][]float32, []int) {
	g := NewGenerator(r)
	logits := g.Prefill(prompt)
	rows := [][]float32{append([]float32(nil), logits...)}
	var toks []int
	for i := 0; i < n; i++ {
		next := argmax(logits)
		toks = append(toks, next)
		if g.Pos() >= r.Model().Cfg.MaxSeq {
			break
		}
		logits = g.Append(next)
		rows = append(rows, append([]float32(nil), logits...))
	}
	return rows, toks
}

// The batched continuous decode must be bit-identical per sequence to the
// sequential Generator, across batch compositions and arrival orders:
// sequences are admitted staggered, stepped together, and retired at
// different times, and every logits row must equal the sequential run's
// row exactly (float bit equality, not tolerance).
func TestBatchGeneratorMatchesSequential(t *testing.T) {
	for _, cfg := range []Config{optConfig(), llamaConfig()} {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			m, err := NewModel(cfg, rng.New(810))
			if err != nil {
				t.Fatal(err)
			}
			r := NewRunner(m)
			prompts := [][]int{
				{5, 1, 29, 8},
				{2, 2},
				{7, 0, 3, 3, 11, 24, 9},
				{30},
			}
			const steps = 6
			want := make([][][]float32, len(prompts))
			for i, p := range prompts {
				want[i], _ = greedySequential(r, p, steps)
			}

			bg := NewBatchGenerator(r, 3)
			// Staggered schedule: admit 0 and 1, step twice, retire 1 early,
			// admit 2, finish 0, admit 3 into 0's freed slot. next[i] is the
			// sequence's pending token, got[i] the logits rows seen so far.
			slot := make(map[int]int) // seq -> slot
			next := make(map[int]int) // seq -> pending token
			emit := make(map[int]int) // seq -> rows checked
			check := func(seq int, row []float32) {
				w := want[seq][emit[seq]]
				for j := range row {
					if row[j] != w[j] {
						t.Fatalf("seq %d row %d col %d: batched %v != sequential %v", seq, emit[seq], j, row[j], w[j])
					}
				}
				emit[seq]++
			}
			admit := func(seq int) {
				s, logits, err := bg.Admit(prompts[seq], "")
				if err != nil {
					t.Fatalf("admit seq %d: %v", seq, err)
				}
				slot[seq] = s
				check(seq, logits)
				next[seq] = argmax(logits)
			}
			step := func(seqs ...int) {
				ids := make([]int, len(seqs))
				toks := make([]int, len(seqs))
				for i, q := range seqs {
					ids[i] = slot[q]
					toks[i] = next[q]
				}
				logits, err := bg.Step(ids, toks)
				if err != nil {
					t.Fatalf("step %v: %v", seqs, err)
				}
				for i, q := range seqs {
					check(q, logits.Row(i))
					next[q] = argmax(logits.Row(i))
				}
			}

			admit(0)
			admit(1)
			step(0, 1)
			step(1, 0) // arrival order within the batch must not matter
			bg.Release(slot[1])
			admit(2)
			step(2, 0)
			step(0, 2)
			step(0, 2)
			step(0, 2)
			bg.Release(slot[0])
			admit(3)
			step(3, 2)
			if bg.Free() != 1 {
				t.Fatalf("free slots = %d, want 1", bg.Free())
			}
		})
	}
}

func TestBatchGeneratorErrors(t *testing.T) {
	cfg := optConfig()
	cfg.MaxSeq = 6
	m, _ := NewModel(cfg, rng.New(811))
	bg := NewBatchGenerator(NewRunner(m), 2)

	if _, _, err := bg.Admit(nil, ""); !errors.Is(err, ErrEmptyPrompt) {
		t.Fatalf("empty prompt: %v", err)
	}
	if _, _, err := bg.Admit([]int{1, 2, 3, 4, 5, 6, 7}, ""); !errors.Is(err, ErrCacheFull) {
		t.Fatalf("over-long prompt: %v", err)
	}
	var tre *TokenRangeError
	if _, _, err := bg.Admit([]int{1, 999}, ""); !errors.As(err, &tre) {
		t.Fatalf("bad token: %v", err)
	}
	if bg.Free() != 2 {
		t.Fatalf("failed admits must not consume slots, free = %d", bg.Free())
	}

	s0, _, err := bg.Admit([]int{1, 2}, "")
	if err != nil {
		t.Fatal(err)
	}
	s1, _, err := bg.Admit([]int{3}, "")
	if err != nil {
		t.Fatal(err)
	}
	if _, _, err := bg.Admit([]int{4}, ""); !errors.Is(err, ErrNoFreeSlot) {
		t.Fatalf("full generator: %v", err)
	}
	if _, err := bg.Step([]int{s0}, []int{999}); err == nil {
		t.Fatal("out-of-range step token must error")
	}
	if _, err := bg.Step([]int{5}, []int{1}); err == nil {
		t.Fatal("inactive slot must error")
	}
	bg.Release(s1)
	if _, err := bg.Step([]int{s1}, []int{1}); err == nil {
		t.Fatal("released slot must error")
	}
	// Fill slot 0's cache, then the step must report ErrCacheFull.
	for bg.Pos(s0) < cfg.MaxSeq {
		if _, err := bg.Step([]int{s0}, []int{1}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := bg.Step([]int{s0}, []int{1}); !errors.Is(err, ErrCacheFull) {
		t.Fatalf("full cache: %v", err)
	}
}

// Chunked prefill must be bit-identical to the sequential Generator for
// every chunk size and page size, even while the prefilling prompt's chunks
// share their steps with another sequence's live decode rows — the tentpole
// contract of the chunked-prefill scheduler. The long prompt is fed through
// Begin + StepSegs in fixed-size chunks riding along with a decoding short
// sequence, then both decode together; every observable logits row must
// equal the sequential run's row exactly (float bit equality).
func TestChunkedPrefillMatchesSequential(t *testing.T) {
	for _, cfg := range []Config{optConfig(), llamaConfig()} {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			m, err := NewModel(cfg, rng.New(815))
			if err != nil {
				t.Fatal(err)
			}
			r := NewRunner(m)
			long := []int{7, 0, 3, 3, 11, 24, 9, 16, 2, 28, 5, 1}
			short := []int{5, 1, 29}
			const steps = 5
			wantLong, _ := greedySequential(r, long, steps)
			// The short sequence decodes one token per prefill chunk plus the
			// joint steps; size its reference for the smallest chunk size.
			wantShort, _ := greedySequential(r, short, len(long)+steps)

			for _, pageTokens := range []int{3, DefaultKVPageTokens, cfg.MaxSeq} {
				for _, chunk := range []int{1, 3, 5, len(long)} {
					bg := NewBatchGeneratorPaged(r, 2, pageTokens, 0)
					emitL, emitS := 0, 0
					check := func(want [][]float32, emit *int, row []float32) {
						w := want[*emit]
						for j := range row {
							if row[j] != w[j] {
								t.Fatalf("page=%d chunk=%d: row %d col %d: chunked %v != sequential %v",
									pageTokens, chunk, *emit, j, row[j], w[j])
							}
						}
						*emit++
					}
					slotS, logitsS, err := bg.Admit(short, "")
					if err != nil {
						t.Fatal(err)
					}
					check(wantShort, &emitS, logitsS)
					nextS := argmax(logitsS)
					slotL, err := bg.Begin("", 0)
					if err != nil {
						t.Fatal(err)
					}
					// Prefill the long prompt chunk by chunk, each chunk batched
					// with one of the short sequence's decode rows.
					var nextL int
					for off := 0; off < len(long); {
						n := chunk
						if off+n > len(long) {
							n = len(long) - off
						}
						logits, err := bg.StepSegs([]StepSeg{
							{Slot: slotS, Tokens: []int{nextS}},
							{Slot: slotL, Tokens: long[off : off+n]},
						})
						if err != nil {
							t.Fatalf("page=%d chunk=%d off=%d: %v", pageTokens, chunk, off, err)
						}
						check(wantShort, &emitS, logits.Row(0))
						nextS = argmax(logits.Row(0))
						off += n
						if off == len(long) {
							// The completing chunk's row is the prompt's logits.
							check(wantLong, &emitL, logits.Row(1))
							nextL = argmax(logits.Row(1))
						}
					}
					if bg.Pos(slotL) != len(long) {
						t.Fatalf("prefilled pos = %d, want %d", bg.Pos(slotL), len(long))
					}
					// Joint decode: both sequences advance together.
					for s := 0; s < steps-1; s++ {
						logits, err := bg.Step([]int{slotL, slotS}, []int{nextL, nextS})
						if err != nil {
							t.Fatal(err)
						}
						check(wantLong, &emitL, logits.Row(0))
						check(wantShort, &emitS, logits.Row(1))
						nextL = argmax(logits.Row(0))
						nextS = argmax(logits.Row(1))
					}
					bg.Release(slotL)
					bg.Release(slotS)
				}
			}
		})
	}
}

// Chunked prefill + decode must stay allocation-free in steady state, like
// the pure-decode path: pooled segments, pooled per-row tables, pooled
// pages.
func TestChunkedStepAllocs(t *testing.T) {
	cfg := optConfig()
	cfg.MaxSeq = 256
	m, _ := NewModel(cfg, rng.New(816))
	bg := NewBatchGeneratorPaged(NewRunner(m), 2, 8, 0)
	prompt := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
	slotD, _, err := bg.Admit([]int{3, 4}, "")
	if err != nil {
		t.Fatal(err)
	}
	segs := make([]StepSeg, 2)
	tokD := []int{2}
	runOnce := func() {
		slotP, err := bg.Begin("", 0)
		if err != nil {
			panic(err)
		}
		for off := 0; off < len(prompt); off += 4 {
			segs[0] = StepSeg{Slot: slotD, Tokens: tokD}
			segs[1] = StepSeg{Slot: slotP, Tokens: prompt[off : off+4]}
			if _, err := bg.StepSegs(segs); err != nil {
				panic(err)
			}
		}
		bg.Release(slotP)
		if bg.Pos(slotD) >= cfg.MaxSeq-1 {
			bg.Release(slotD)
			slotD, _, err = bg.Admit([]int{3, 4}, "")
			if err != nil {
				panic(err)
			}
		}
	}
	runOnce() // warm the scratch
	allocs := testing.AllocsPerRun(50, runOnce)
	if allocs != 0 {
		t.Fatalf("chunked step allocates %v times in steady state, want 0", allocs)
	}
}

func TestGeneratorCheckedErrors(t *testing.T) {
	cfg := optConfig()
	cfg.MaxSeq = 4
	m, _ := NewModel(cfg, rng.New(812))
	g := NewGenerator(NewRunner(m))

	var tre *TokenRangeError
	if _, err := g.AppendChecked(-1); !errors.As(err, &tre) {
		t.Fatalf("bad token: %v", err)
	}
	if _, err := g.PrefillChecked(nil); !errors.Is(err, ErrEmptyPrompt) {
		t.Fatalf("empty prompt: %v", err)
	}
	if _, err := g.PrefillChecked([]int{1, 2, 3, 4, 5}); !errors.Is(err, ErrCacheFull) {
		t.Fatalf("over-capacity prompt: %v", err)
	}
	if g.Pos() != 0 {
		t.Fatalf("failed calls must not advance pos, got %d", g.Pos())
	}
	if _, err := g.PrefillChecked([]int{1, 2, 3, 4}); err != nil {
		t.Fatal(err)
	}
	if _, err := g.AppendChecked(1); !errors.Is(err, ErrCacheFull) {
		t.Fatalf("append past MaxSeq: %v", err)
	}
}

// The decode step must be allocation-free in steady state (satellite of the
// continuous-batching PR): pooled activations, pooled logits, pooled
// matrix headers. Guarded here for the digital path; the analog path's
// scratch is gated by the existing analog 0-alloc tests.
func TestDecodeStepAllocs(t *testing.T) {
	cfg := optConfig()
	cfg.MaxSeq = 512
	m, _ := NewModel(cfg, rng.New(813))
	g := NewGenerator(NewRunner(m))
	g.Append(1) // warm the scratch
	allocs := testing.AllocsPerRun(200, func() {
		if g.Pos() >= cfg.MaxSeq {
			g.Reset()
		}
		g.Append(2)
	})
	if allocs != 0 {
		t.Fatalf("decode step allocates %v times in steady state, want 0", allocs)
	}
}

// BenchmarkDecodeStepAllocs is the benchmark face of the alloc gate: run
// with -benchmem to see steady-state decode allocations (0 allocs/op).
func BenchmarkDecodeStepAllocs(b *testing.B) {
	cfg := optConfig()
	cfg.MaxSeq = 512
	m, _ := NewModel(cfg, rng.New(814))
	g := NewGenerator(NewRunner(m))
	g.Append(1)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		if g.Pos() >= cfg.MaxSeq {
			g.Reset()
		}
		g.Append(2)
	}
}
