package nn

import (
	"bytes"
	"testing"

	"nora/internal/autograd"
	"nora/internal/rng"
	"nora/internal/tensor"
)

func optConfig() Config {
	return Config{
		Name: "opt-test", Arch: ArchOPT,
		Vocab: 31, DModel: 32, NHeads: 4, NLayers: 2, DFF: 64, MaxSeq: 24,
	}
}

func llamaConfig() Config {
	return Config{
		Name: "llama-test", Arch: ArchLLaMA,
		Vocab: 31, DModel: 32, NHeads: 4, NLayers: 2, DFF: 48, MaxSeq: 24,
		RoPEBase: 10000,
	}
}

func TestConfigValidate(t *testing.T) {
	good := optConfig()
	if err := good.Validate(); err != nil {
		t.Fatalf("valid config rejected: %v", err)
	}
	bad := good
	bad.NHeads = 5 // 32 % 5 != 0
	if bad.Validate() == nil {
		t.Fatal("divisibility violation accepted")
	}
	bad = good
	bad.Vocab = 0
	if bad.Validate() == nil {
		t.Fatal("zero vocab accepted")
	}
	bad = llamaConfig()
	bad.RoPEBase = 0
	if bad.Validate() == nil {
		t.Fatal("llama without RoPE base accepted")
	}
	bad = llamaConfig()
	bad.NHeads = 32 // head dim 1 is odd
	if bad.Validate() == nil {
		t.Fatal("odd RoPE head dim accepted")
	}
	bad = good
	bad.Window = -1
	if bad.Validate() == nil {
		t.Fatal("negative window accepted")
	}
}

func TestArchString(t *testing.T) {
	if ArchOPT.String() != "opt" || ArchLLaMA.String() != "llama" {
		t.Fatal("Arch.String wrong")
	}
	if Arch(9).String() == "" {
		t.Fatal("unknown arch should still render")
	}
}

func TestNewModelParamCount(t *testing.T) {
	for _, cfg := range []Config{optConfig(), llamaConfig()} {
		m, err := NewModel(cfg, rng.New(1))
		if err != nil {
			t.Fatal(err)
		}
		d, ff, v := cfg.DModel, cfg.DFF, cfg.Vocab
		var want int
		if cfg.Arch == ArchOPT {
			perBlock := 2*d + 4*(d*d+d) + 2*d + d*ff + ff + ff*d + d
			want = v*d + cfg.MaxSeq*d + cfg.NLayers*perBlock + 2*d + d*v
		} else {
			perBlock := d + 4*d*d + d + 2*d*ff + ff*d
			want = v*d + cfg.NLayers*perBlock + d + d*v
		}
		if got := m.NumParams(); got != want {
			t.Fatalf("%s: NumParams = %d, want %d", cfg.Name, got, want)
		}
	}
}

func TestLinearsEnumeration(t *testing.T) {
	mOPT, _ := NewModel(optConfig(), rng.New(2))
	specs := mOPT.Linears()
	if len(specs) != 2*6 {
		t.Fatalf("OPT linears = %d, want 12", len(specs))
	}
	if specs[0].Name != "layer0.attn.q" || specs[0].B == nil {
		t.Fatalf("OPT spec[0] = %+v", specs[0].Name)
	}
	if specs[4].Name != "layer0.mlp.fc1" || specs[4].W.Cols != 64 {
		t.Fatalf("OPT spec[4] = %v %dx%d", specs[4].Name, specs[4].W.Rows, specs[4].W.Cols)
	}

	mLL, _ := NewModel(llamaConfig(), rng.New(3))
	specs = mLL.Linears()
	if len(specs) != 2*7 {
		t.Fatalf("LLaMA linears = %d, want 14", len(specs))
	}
	for _, s := range specs {
		if s.B != nil {
			t.Fatalf("LLaMA linear %s must be bias-free", s.Name)
		}
	}
}

func TestCausalMask(t *testing.T) {
	m := CausalMask(4, 0)
	for i := 0; i < 4; i++ {
		for j := 0; j < 4; j++ {
			v := m.At(i, j)
			if j <= i && v != 0 {
				t.Fatalf("mask[%d,%d] = %v, want 0", i, j, v)
			}
			if j > i && v > -1e8 {
				t.Fatalf("mask[%d,%d] = %v, want -inf-ish", i, j, v)
			}
		}
	}
	// sliding window of 2: position 3 may attend to {2,3} only
	w := CausalMask(4, 2)
	if w.At(3, 1) > -1e8 || w.At(3, 2) != 0 || w.At(3, 3) != 0 {
		t.Fatal("window mask wrong")
	}
}

// The inference Runner must agree with the autograd training forward — this
// pins the two implementations of every kernel (LN, RMSNorm, attention,
// RoPE, MLP) against each other.
func TestRunnerMatchesTrainingForward(t *testing.T) {
	for _, cfg := range []Config{optConfig(), llamaConfig()} {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			m, err := NewModel(cfg, rng.New(4))
			if err != nil {
				t.Fatal(err)
			}
			tokens := []int{5, 1, 29, 8, 0, 17, 3, 3, 11}
			tp := autograd.NewTape()
			want := m.ForwardTrain(tp, tokens).Val
			got := NewRunner(m).Logits(tokens)
			if !got.AllClose(want, 2e-4*(1+want.AbsMax())) {
				t.Fatalf("runner and training forward diverge (max |Δ| over %v)", want.AbsMax())
			}
		})
	}
}

func TestRunnerWindowAttention(t *testing.T) {
	cfg := llamaConfig()
	cfg.Window = 3
	m, err := NewModel(cfg, rng.New(5))
	if err != nil {
		t.Fatal(err)
	}
	tokens := []int{1, 2, 3, 4, 5, 6, 7, 8}
	tp := autograd.NewTape()
	want := m.ForwardTrain(tp, tokens).Val
	got := NewRunner(m).Logits(tokens)
	if !got.AllClose(want, 2e-4*(1+want.AbsMax())) {
		t.Fatal("windowed runner and training forward diverge")
	}
	// windowed attention must differ from full attention
	cfgFull := llamaConfig()
	mFull, _ := NewModel(cfgFull, rng.New(5))
	full := NewRunner(mFull).Logits(tokens)
	if got.AllClose(full, 1e-6) {
		t.Fatal("window had no effect on logits")
	}
}

func TestSetLinearUnknownPanics(t *testing.T) {
	m, _ := NewModel(optConfig(), rng.New(6))
	r := NewRunner(m)
	defer func() {
		if recover() == nil {
			t.Fatal("expected panic")
		}
	}()
	r.SetLinear("nope", nil)
}

func TestPreLinearHookSeesEveryLayer(t *testing.T) {
	m, _ := NewModel(optConfig(), rng.New(7))
	r := NewRunner(m)
	seen := map[string]int{}
	r.PreLinear = func(name string, x *tensor.Matrix) {
		seen[name]++
		if x.Cols == 0 || x.Rows == 0 {
			t.Fatalf("hook got empty activation for %s", name)
		}
	}
	r.Logits([]int{1, 2, 3})
	if len(seen) != 12 {
		t.Fatalf("hook saw %d layers, want 12", len(seen))
	}
	for name, n := range seen {
		if n != 1 {
			t.Fatalf("layer %s seen %d times", name, n)
		}
	}
}

// PlantOutliers must not change the model's function but must raise the
// kurtosis of the activations entering the linear layers.
func TestPlantOutliersFunctionPreserving(t *testing.T) {
	for _, cfg := range []Config{optConfig(), llamaConfig()} {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			m, _ := NewModel(cfg, rng.New(8))
			tokens := []int{3, 14, 15, 9, 2, 6}
			before := NewRunner(m).Logits(tokens)
			kBefore := linearInputKurtosis(m, tokens, "layer0.attn.q")

			PlantOutliers(m, []int{2, 17}, 24)
			after := NewRunner(m).Logits(tokens)
			kAfter := linearInputKurtosis(m, tokens, "layer0.attn.q")

			if !before.AllClose(after, 5e-3*(1+before.AbsMax())) {
				t.Fatal("PlantOutliers changed model function")
			}
			if kAfter < 3*kBefore {
				t.Fatalf("kurtosis %v → %v: outliers not planted", kBefore, kAfter)
			}
		})
	}
}

func linearInputKurtosis(m *Model, tokens []int, layer string) float64 {
	r := NewRunner(m)
	var sample []float32
	r.PreLinear = func(name string, x *tensor.Matrix) {
		if name == layer {
			sample = append(sample, x.Data...)
		}
	}
	r.Logits(tokens)
	return kurtosisOf(sample)
}

func kurtosisOf(xs []float32) float64 {
	var mean float64
	for _, v := range xs {
		mean += float64(v)
	}
	mean /= float64(len(xs))
	var m2, m4 float64
	for _, v := range xs {
		d := float64(v) - mean
		m2 += d * d
		m4 += d * d * d * d
	}
	m2 /= float64(len(xs))
	m4 /= float64(len(xs))
	if m2 == 0 {
		return 0
	}
	return m4 / (m2 * m2)
}

func TestPlantOutliersPanics(t *testing.T) {
	m, _ := NewModel(optConfig(), rng.New(9))
	for name, f := range map[string]func(){
		"bad-channel": func() { PlantOutliers(m, []int{99}, 2) },
		"bad-factor":  func() { PlantOutliers(m, []int{0}, 0) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestSaveLoadRoundTrip(t *testing.T) {
	for _, cfg := range []Config{optConfig(), llamaConfig()} {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			m, _ := NewModel(cfg, rng.New(10))
			PlantOutliers(m, []int{1}, 8)
			var buf bytes.Buffer
			if err := m.Save(&buf); err != nil {
				t.Fatal(err)
			}
			m2, err := Load(&buf)
			if err != nil {
				t.Fatal(err)
			}
			if m2.Cfg != m.Cfg {
				t.Fatalf("config mismatch: %+v vs %+v", m2.Cfg, m.Cfg)
			}
			tokens := []int{1, 2, 3, 4}
			a := NewRunner(m).Logits(tokens)
			b := NewRunner(m2).Logits(tokens)
			if !a.AllClose(b, 0) {
				t.Fatal("loaded model differs bitwise")
			}
		})
	}
}

func TestLoadRejectsGarbage(t *testing.T) {
	if _, err := Load(bytes.NewReader([]byte("not a model file ......."))); err == nil {
		t.Fatal("garbage accepted")
	}
	if _, err := Load(bytes.NewReader(nil)); err == nil {
		t.Fatal("empty input accepted")
	}
}

// Training smoke test: a tiny model must be able to memorize a handful of
// fixed sequences (loss drops by an order of magnitude).
func TestTrainingMemorizes(t *testing.T) {
	for _, cfg := range []Config{optConfig(), llamaConfig()} {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			m, _ := NewModel(cfg, rng.New(11))
			opt := autograd.NewAdam(m.Params(), 0.01)
			opt.ClipNorm = 1
			batch := [][]int{
				{1, 2, 3, 4, 5, 6},
				{7, 8, 9, 10, 11, 12},
				{1, 2, 3, 4, 5, 6},
				{13, 14, 15, 16, 17, 18},
			}
			first := m.LossOnBatch(batch)
			opt.Step()
			var last float64
			for i := 0; i < 60; i++ {
				last = m.LossOnBatch(batch)
				opt.Step()
			}
			if last > first/5 {
				t.Fatalf("loss did not drop: first %.4f last %.4f", first, last)
			}
		})
	}
}

func TestEvalAccuracyPerfectOnMemorized(t *testing.T) {
	cfg := optConfig()
	cfg.NLayers = 1
	m, _ := NewModel(cfg, rng.New(12))
	opt := autograd.NewAdam(m.Params(), 0.02)
	opt.ClipNorm = 1
	seqs := [][]int{
		{1, 2, 3, 4},
		{5, 6, 7, 8},
	}
	for i := 0; i < 120; i++ {
		m.LossOnBatch(seqs)
		opt.Step()
	}
	r := NewRunner(m)
	if acc := r.EvalAccuracy(seqs); acc < 1 {
		t.Fatalf("memorization accuracy = %v", acc)
	}
}

func TestEvalSkipsShortSeq(t *testing.T) {
	m, _ := NewModel(optConfig(), rng.New(13))
	r := NewRunner(m)
	// Length-<2 sequences carry no (context, target) pair: they are counted
	// as skipped, not evaluated, and must not abort the pass.
	res := r.Eval([][]int{{1}, {}, {2, 3}}, 1)
	if res.Skipped != 2 || res.Evaluated != 1 {
		t.Fatalf("skip accounting: %+v", res)
	}
	// Empty and all-skipped inputs yield accuracy 0, not NaN or a panic.
	if acc := r.EvalAccuracy(nil); acc != 0 {
		t.Fatalf("empty eval accuracy = %v", acc)
	}
	if acc := r.EvalAccuracy([][]int{{7}}); acc != 0 {
		t.Fatalf("all-skipped eval accuracy = %v", acc)
	}
}

func TestEvalParallelMatchesSerial(t *testing.T) {
	m, _ := NewModel(optConfig(), rng.New(15))
	r := NewRunner(m)
	seqs := [][]int{{1, 2, 3}, {4, 5}, {6}, {7, 8, 9, 10}, {11, 12}, {13, 14, 15}}
	serial := r.Eval(seqs, 1)
	parallel := r.Eval(seqs, 4)
	if serial != parallel {
		t.Fatalf("worker count changed the result: %+v vs %+v", serial, parallel)
	}
	if serial.Tokens != 2+1+3+1+2 {
		t.Fatalf("token accounting: %+v", serial)
	}
}

func TestLogitsValidation(t *testing.T) {
	m, _ := NewModel(optConfig(), rng.New(14))
	r := NewRunner(m)
	for name, f := range map[string]func(){
		"empty":     func() { r.Logits(nil) },
		"too-long":  func() { r.Logits(make([]int, 100)) },
		"bad-token": func() { r.Logits([]int{999}) },
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}
