package nn

import (
	"math"
	"testing"

	"nora/internal/rng"
	"nora/internal/tensor"
)

// forwardOnly hides an operator's ForwardInto method so the runner is
// forced through applyInto's Forward-plus-copy fallback.
type forwardOnly struct{ op LinearOp }

func (f forwardOnly) Name() string                            { return f.op.Name() }
func (f forwardOnly) Forward(x *tensor.Matrix) *tensor.Matrix { return f.op.Forward(x) }

// TestApplyIntoFallbackMatchesFastPath: custom LinearOps without a
// ForwardInto fast path must keep producing bit-identical logits through
// the pooled inference loop.
func TestApplyIntoFallbackMatchesFastPath(t *testing.T) {
	for _, cfg := range []Config{optConfig(), llamaConfig()} {
		m, err := NewModel(cfg, rng.New(7))
		if err != nil {
			t.Fatal(err)
		}
		tokens := []int{3, 1, 4, 1, 5, 9, 2, 6}
		fast := NewRunner(m).Logits(tokens)

		slow := NewRunner(m)
		for _, spec := range m.Linears() {
			slow.SetLinear(spec.Name, forwardOnly{slow.Linear(spec.Name)})
		}
		got := slow.Logits(tokens)

		if !got.SameShape(fast) {
			t.Fatalf("%s: shape %dx%d vs %dx%d", cfg.Name, got.Rows, got.Cols, fast.Rows, fast.Cols)
		}
		for i, v := range got.Data {
			if math.Float32bits(v) != math.Float32bits(fast.Data[i]) {
				t.Fatalf("%s: fallback logits diverge at %d: %v vs %v", cfg.Name, i, v, fast.Data[i])
			}
		}
	}
}
