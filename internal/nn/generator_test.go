package nn

import (
	"math"
	"testing"

	"nora/internal/autograd"
	"nora/internal/rng"
)

// Incremental decoding must reproduce the full forward pass exactly: for
// every prefix position, the generator's logits row equals the
// corresponding row of Runner.Logits.
func TestGeneratorMatchesFullForward(t *testing.T) {
	for _, cfg := range []Config{optConfig(), llamaConfig()} {
		cfg := cfg
		t.Run(cfg.Name, func(t *testing.T) {
			m, err := NewModel(cfg, rng.New(700))
			if err != nil {
				t.Fatal(err)
			}
			r := NewRunner(m)
			tokens := []int{5, 1, 29, 8, 0, 17, 3, 3, 11, 24}
			full := r.Logits(tokens)
			g := NewGenerator(r)
			for i, tok := range tokens {
				row := g.Append(tok)
				want := full.Row(i)
				for j := range row {
					if math.Abs(float64(row[j]-want[j])) > 1e-3*(1+math.Abs(float64(want[j]))) {
						t.Fatalf("pos %d vocab %d: incremental %v vs full %v", i, j, row[j], want[j])
					}
				}
			}
		})
	}
}

func TestGeneratorMatchesFullForwardWindowed(t *testing.T) {
	cfg := llamaConfig()
	cfg.Window = 4
	m, err := NewModel(cfg, rng.New(701))
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(m)
	tokens := []int{1, 2, 3, 4, 5, 6, 7, 8, 9, 10, 11, 12}
	full := r.Logits(tokens)
	g := NewGenerator(r)
	for i, tok := range tokens {
		row := g.Append(tok)
		want := full.Row(i)
		for j := range row {
			if math.Abs(float64(row[j]-want[j])) > 1e-3*(1+math.Abs(float64(want[j]))) {
				t.Fatalf("windowed pos %d: incremental diverges from full forward", i)
			}
		}
	}
}

func TestGeneratorResetReusesCache(t *testing.T) {
	m, _ := NewModel(optConfig(), rng.New(702))
	r := NewRunner(m)
	g := NewGenerator(r)
	a := g.Prefill([]int{3, 7, 9})
	g.Reset()
	if g.Pos() != 0 {
		t.Fatal("Reset must zero position")
	}
	b := g.Prefill([]int{3, 7, 9})
	for j := range a {
		if a[j] != b[j] {
			t.Fatal("post-Reset generation must be identical (digital ops are pure)")
		}
	}
}

func TestGeneratorPanics(t *testing.T) {
	m, _ := NewModel(optConfig(), rng.New(703))
	g := NewGenerator(NewRunner(m))
	for name, f := range map[string]func(){
		"bad-token":    func() { g.Append(999) },
		"empty-prompt": func() { g.Prefill(nil) },
		"overflow": func() {
			g.Reset()
			for i := 0; i <= m.Cfg.MaxSeq; i++ {
				g.Append(1)
			}
		},
	} {
		func() {
			defer func() {
				if recover() == nil {
					t.Fatalf("%s: expected panic", name)
				}
			}()
			f()
		}()
	}
}

func TestGreedyGeneratesRequestedTokens(t *testing.T) {
	m, _ := NewModel(optConfig(), rng.New(704))
	g := NewGenerator(NewRunner(m))
	out := g.Greedy([]int{1, 2, 3}, 5)
	if len(out) != 5 {
		t.Fatalf("generated %d tokens", len(out))
	}
	for _, tok := range out {
		if tok < 0 || tok >= m.Cfg.Vocab {
			t.Fatalf("generated token %d out of vocab", tok)
		}
	}
}

func TestGreedyStopsAtMaxSeq(t *testing.T) {
	cfg := optConfig()
	cfg.MaxSeq = 6
	m, _ := NewModel(cfg, rng.New(705))
	g := NewGenerator(NewRunner(m))
	out := g.Greedy([]int{1, 2, 3}, 10)
	// prompt used 3 slots; generation may fill at most 3 more appends
	if len(out) > 4 {
		t.Fatalf("generated %d tokens past MaxSeq", len(out))
	}
}

func TestSampleTokenGreedyDegenerate(t *testing.T) {
	logits := []float32{0.1, 5, -2, 3}
	r := rng.New(800)
	if sampleToken(logits, 0, 0, r) != 1 {
		t.Fatal("temperature 0 must be greedy")
	}
	if sampleToken(logits, 1, 1, r) != 1 {
		t.Fatal("topK 1 must be greedy")
	}
}

func TestSampleTokenTopKRestriction(t *testing.T) {
	logits := []float32{10, 9, -100, -100}
	r := rng.New(801)
	for i := 0; i < 200; i++ {
		got := sampleToken(logits, 1, 2, r)
		if got != 0 && got != 1 {
			t.Fatalf("top-2 sampled excluded token %d", got)
		}
	}
	// both candidates should appear at temperature 1 (logit gap 1)
	seen := map[int]bool{}
	for i := 0; i < 200; i++ {
		seen[sampleToken(logits, 1, 2, r)] = true
	}
	if !seen[0] || !seen[1] {
		t.Fatalf("sampling not stochastic: %v", seen)
	}
}

func TestSampleTokenHighTemperatureSpreads(t *testing.T) {
	logits := []float32{2, 1, 0, -1}
	r := rng.New(802)
	counts := make([]int, 4)
	for i := 0; i < 4000; i++ {
		counts[sampleToken(logits, 5, 0, r)]++
	}
	for id, n := range counts {
		if n == 0 {
			t.Fatalf("token %d never sampled at high temperature", id)
		}
	}
	if counts[0] <= counts[3] {
		t.Fatal("higher-logit token should still be more likely")
	}
}

func TestGeneratorSampleAPI(t *testing.T) {
	m, _ := NewModel(optConfig(), rng.New(707))
	g := NewGenerator(NewRunner(m))
	out := g.Sample([]int{1, 2}, 4, 0.8, 5, rng.New(803))
	if len(out) != 4 {
		t.Fatalf("sampled %d tokens", len(out))
	}
	for _, tok := range out {
		if tok < 0 || tok >= m.Cfg.Vocab {
			t.Fatalf("token %d out of vocab", tok)
		}
	}
	// temperature 0 sampling equals greedy decoding
	g.Reset()
	greedy := g.Greedy([]int{1, 2}, 4)
	g2 := NewGenerator(NewRunner(m))
	zeroTemp := g2.Sample([]int{1, 2}, 4, 0, 0, rng.New(804))
	for i := range greedy {
		if greedy[i] != zeroTemp[i] {
			t.Fatal("temperature-0 sampling must equal greedy")
		}
	}
}

// A trained model's greedy continuation after QUERY must be the correct
// answer token — generation agrees with the evaluation protocol.
func TestGreedyAnswersTask(t *testing.T) {
	if testing.Short() {
		t.Skip("training in test")
	}
	cfg := optConfig()
	m, _ := NewModel(cfg, rng.New(706))
	opt := autograd.NewAdam(m.Params(), 0.01)
	opt.ClipNorm = 1
	seqs := [][]int{
		{1, 2, 3, 4, 5, 6},
		{7, 8, 9, 10, 11, 12},
	}
	for i := 0; i < 150; i++ {
		m.LossOnBatch(seqs)
		opt.Step()
	}
	g := NewGenerator(NewRunner(m))
	for _, seq := range seqs {
		g.Reset()
		out := g.Greedy(seq[:3], 3)
		for j, want := range seq[3:] {
			if out[j] != want {
				t.Fatalf("greedy continuation %v, want %v", out, seq[3:])
			}
		}
	}
}
