package nn

import (
	"fmt"
	"math"

	"nora/internal/autograd"
	"nora/internal/rng"
	"nora/internal/tensor"
)

// Block holds the parameters of one transformer block. Fields that a given
// architecture does not use are nil (e.g. biases and AttnNormBias under
// ArchLLaMA; WGate/WUp/WDown under ArchOPT).
type Block struct {
	AttnNormGain *autograd.Param // 1×d
	AttnNormBias *autograd.Param // 1×d (OPT only)

	// Attention projections, stored input-major (in × out). WQ/WO are
	// d×d; WK/WV are d×kvDim (kvDim < d under grouped-query attention).
	WQ, WK, WV, WO *autograd.Param
	BQ, BK, BV, BO *autograd.Param // 1×out (OPT only)

	MLPNormGain *autograd.Param // 1×d
	MLPNormBias *autograd.Param // 1×d (OPT only)

	W1, W2 *autograd.Param // OPT MLP: d×ff, ff×d
	B1, B2 *autograd.Param // OPT MLP biases

	WGate, WUp, WDown *autograd.Param // LLaMA MLP: d×ff, d×ff, ff×d
}

// Model is a decoder-only transformer.
type Model struct {
	Cfg Config

	TokEmb *autograd.Param // vocab×d
	PosEmb *autograd.Param // maxseq×d (OPT only)

	Blocks []*Block

	FinalNormGain *autograd.Param // 1×d
	FinalNormBias *autograd.Param // 1×d (OPT only)

	LMHead *autograd.Param // d×vocab

	// Hardware-aware training hooks; see SetInjectors.
	injectors []Injector
	trainSeq  int // batch sequence index, threaded into LinearCtx
}

// SetInjectors installs the hardware-aware training injector chain applied
// to every block linear during ForwardTrain, replacing any previous chain
// (call with no arguments to clear). Injectors run in order: Weight hooks
// before the matmul, Output hooks after the bias add. Inference paths are
// unaffected.
func (m *Model) SetInjectors(inj ...Injector) {
	m.injectors = inj
}

// Injectors returns the installed injector chain (nil when training is
// purely digital).
func (m *Model) Injectors() []Injector {
	return m.injectors
}

// SetTrainNoise enables legacy hardware-aware noise-injection training:
// every block linear output receives additive Gaussian noise with std
// rel·max|y| drawn fresh per forward call from r, straight-through for
// gradients. rel ≤ 0 (or a nil r) disables injection.
//
// Deprecated: use SetInjectors with an OutputNoise injector (and a
// model.Trainer driving BeginStep) instead — it adds noise ramping and
// per-step frozen realizations. This shim installs OutputNoise in Fresh
// mode, which reproduces the historical draw order exactly.
func (m *Model) SetTrainNoise(rel float32, r *rng.Rand) {
	if rel <= 0 || r == nil {
		m.SetInjectors()
		return
	}
	m.SetInjectors(&OutputNoise{Rel: rel, Rng: r, Fresh: true})
}

// NewModel builds a model with scaled Gaussian initialization
// (std 0.02 for embeddings, 1/sqrt(fanIn) for linears, ones for norm gains).
func NewModel(cfg Config, r *rng.Rand) (*Model, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	m := &Model{Cfg: cfg}
	d, ff := cfg.DModel, cfg.DFF

	gauss := func(name string, rows, cols int, std float32) *autograd.Param {
		mat := tensor.New(rows, cols)
		r.Split(name).FillNormal(mat.Data, 0, std)
		return autograd.NewParam(name, mat)
	}
	ones := func(name string, cols int) *autograd.Param {
		mat := tensor.New(1, cols)
		mat.Fill(1)
		return autograd.NewParam(name, mat)
	}
	zeros := func(name string, cols int) *autograd.Param {
		return autograd.NewParam(name, tensor.New(1, cols))
	}

	m.TokEmb = gauss("tok_emb", cfg.Vocab, d, 0.02)
	if cfg.Arch == ArchOPT {
		m.PosEmb = gauss("pos_emb", cfg.MaxSeq, d, 0.02)
	}
	linStd := float32(1 / math.Sqrt(float64(d)))
	ffStd := float32(1 / math.Sqrt(float64(ff)))
	kv := cfg.KVDim()
	for l := 0; l < cfg.NLayers; l++ {
		b := &Block{}
		p := func(s string) string { return fmt.Sprintf("layer%d.%s", l, s) }
		b.AttnNormGain = ones(p("attn_norm.gain"), d)
		b.WQ = gauss(p("attn.q.w"), d, d, linStd)
		b.WK = gauss(p("attn.k.w"), d, kv, linStd)
		b.WV = gauss(p("attn.v.w"), d, kv, linStd)
		b.WO = gauss(p("attn.o.w"), d, d, linStd)
		b.MLPNormGain = ones(p("mlp_norm.gain"), d)
		switch cfg.Arch {
		case ArchOPT:
			b.AttnNormBias = zeros(p("attn_norm.bias"), d)
			b.BQ = zeros(p("attn.q.b"), d)
			b.BK = zeros(p("attn.k.b"), kv)
			b.BV = zeros(p("attn.v.b"), kv)
			b.BO = zeros(p("attn.o.b"), d)
			b.MLPNormBias = zeros(p("mlp_norm.bias"), d)
			b.W1 = gauss(p("mlp.fc1.w"), d, ff, linStd)
			b.B1 = zeros(p("mlp.fc1.b"), ff)
			b.W2 = gauss(p("mlp.fc2.w"), ff, d, ffStd)
			b.B2 = zeros(p("mlp.fc2.b"), d)
		case ArchLLaMA:
			b.WGate = gauss(p("mlp.gate.w"), d, ff, linStd)
			b.WUp = gauss(p("mlp.up.w"), d, ff, linStd)
			b.WDown = gauss(p("mlp.down.w"), ff, d, ffStd)
		}
		m.Blocks = append(m.Blocks, b)
	}
	m.FinalNormGain = ones("final_norm.gain", d)
	if cfg.Arch == ArchOPT {
		m.FinalNormBias = zeros("final_norm.bias", d)
	}
	m.LMHead = gauss("lm_head", d, cfg.Vocab, linStd)
	return m, nil
}

// Params returns every trainable parameter, in a stable order.
func (m *Model) Params() []*autograd.Param {
	var ps []*autograd.Param
	add := func(p *autograd.Param) {
		if p != nil {
			ps = append(ps, p)
		}
	}
	add(m.TokEmb)
	add(m.PosEmb)
	for _, b := range m.Blocks {
		for _, p := range []*autograd.Param{
			b.AttnNormGain, b.AttnNormBias,
			b.WQ, b.BQ, b.WK, b.BK, b.WV, b.BV, b.WO, b.BO,
			b.MLPNormGain, b.MLPNormBias,
			b.W1, b.B1, b.W2, b.B2,
			b.WGate, b.WUp, b.WDown,
		} {
			add(p)
		}
	}
	add(m.FinalNormGain)
	add(m.FinalNormBias)
	add(m.LMHead)
	return ps
}

// NumParams returns the total scalar parameter count.
func (m *Model) NumParams() int {
	n := 0
	for _, p := range m.Params() {
		n += p.NumEl()
	}
	return n
}

// LinearSpec describes one weight-bearing linear layer of the model in the
// orientation an analog tile consumes: W is (in × out) so that y = x·W + b.
// These are exactly the layers the paper maps onto analog CIM tiles.
type LinearSpec struct {
	Name string
	W    *tensor.Matrix // in × out (aliases model storage)
	B    []float32      // nil when the layer has no bias
}

// Linears enumerates the per-block linear layers in execution order. The LM
// head is excluded: like the embedding it stays digital in our deployment
// (see DESIGN.md).
func (m *Model) Linears() []LinearSpec {
	var specs []LinearSpec
	for l, b := range m.Blocks {
		p := func(s string) string { return fmt.Sprintf("layer%d.%s", l, s) }
		bias := func(pb *autograd.Param) []float32 {
			if pb == nil {
				return nil
			}
			return pb.Value.Row(0)
		}
		specs = append(specs,
			LinearSpec{p("attn.q"), b.WQ.Value, bias(b.BQ)},
			LinearSpec{p("attn.k"), b.WK.Value, bias(b.BK)},
			LinearSpec{p("attn.v"), b.WV.Value, bias(b.BV)},
			LinearSpec{p("attn.o"), b.WO.Value, bias(b.BO)},
		)
		switch m.Cfg.Arch {
		case ArchOPT:
			specs = append(specs,
				LinearSpec{p("mlp.fc1"), b.W1.Value, bias(b.B1)},
				LinearSpec{p("mlp.fc2"), b.W2.Value, bias(b.B2)},
			)
		case ArchLLaMA:
			specs = append(specs,
				LinearSpec{p("mlp.gate"), b.WGate.Value, nil},
				LinearSpec{p("mlp.up"), b.WUp.Value, nil},
				LinearSpec{p("mlp.down"), b.WDown.Value, nil},
			)
		}
	}
	return specs
}

// CausalMask builds an n×n additive attention mask: 0 where position j may
// attend to i (j ≥ i within the window), −1e9 elsewhere. window ≤ 0 means
// full causal attention; window w > 0 restricts row j to columns
// (j−w, j] — Mistral-style sliding-window attention.
func CausalMask(n, window int) *tensor.Matrix {
	m := tensor.New(n, n)
	const neg = -1e9
	for i := 0; i < n; i++ {
		row := m.Row(i)
		for j := 0; j < n; j++ {
			if j > i || (window > 0 && i-j >= window) {
				row[j] = neg
			}
		}
	}
	return m
}
