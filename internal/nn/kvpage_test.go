package nn

import (
	"errors"
	"testing"

	"nora/internal/rng"
)

// Page-governed admission: a pool smaller than slots × pagesFor(MaxSeq)
// must reject full-window admissions with ErrNoFreePages once exhausted —
// even with slots to spare — and budget admissions must fit exactly as many
// sequences as their reserved pages allow. Released pages must be reusable.
func TestKVPageAdmissionCapacity(t *testing.T) {
	cfg := optConfig()
	cfg.MaxSeq = 24
	m, err := NewModel(cfg, rng.New(820))
	if err != nil {
		t.Fatal(err)
	}
	r := NewRunner(m)

	// 4 slots, 4-token pages, but only 9 pages: a full-window admission
	// reserves 6, so a second one must fail on pages while 3 slots are free.
	bg := NewBatchGeneratorPaged(r, 4, 4, 9)
	if bg.PageTokens() != 4 || bg.TotalPages() != 9 || bg.FreePages() != 9 {
		t.Fatalf("pool geometry: pageTokens=%d total=%d free=%d", bg.PageTokens(), bg.TotalPages(), bg.FreePages())
	}
	s0, _, err := bg.Admit([]int{1, 2, 3}, "")
	if err != nil {
		t.Fatal(err)
	}
	if got := bg.FreePages(); got != 3 {
		t.Fatalf("full-window admit must reserve pagesFor(MaxSeq)=6, free=%d", got)
	}
	if _, _, err := bg.Admit([]int{4}, ""); !errors.Is(err, ErrNoFreePages) {
		t.Fatalf("exhausted pool: %v", err)
	}
	if bg.Free() != 3 {
		t.Fatalf("failed admission must not consume a slot, free=%d", bg.Free())
	}
	if bg.FreePages() != 3 {
		t.Fatalf("failed admission must not leak pages, free=%d", bg.FreePages())
	}

	// Budget admissions reserve only what they declare: 3 prompt tokens + 5
	// new = 8 positions = 2 pages each; one fits, then the pool (1 page
	// left) rejects the next.
	s1, _, err := bg.AdmitBudget([]int{5, 6, 7}, "", 8)
	if err != nil {
		t.Fatal(err)
	}
	if got := bg.FreePages(); got != 1 {
		t.Fatalf("budget admit must reserve 2 pages, free=%d", got)
	}
	if _, _, err := bg.AdmitBudget([]int{8, 9, 10, 11, 12}, "", 8); !errors.Is(err, ErrNoFreePages) {
		t.Fatalf("pool with 1 free page: %v", err)
	}

	// A sequence decoding past its budget tops up lazily from the pool…
	for i := 0; i < 6; i++ { // pos 3..8, crosses into a 3rd page at pos 8
		if _, err := bg.Step([]int{s1}, []int{1}); err != nil {
			t.Fatalf("step %d past budget with free pages: %v", i, err)
		}
	}
	if got := bg.FreePages(); got != 0 {
		t.Fatalf("lazy top-up must take the last page, free=%d", got)
	}
	// …and fails cleanly with ErrNoFreePages when none are left.
	for i := 0; i < 3; i++ { // pos 9..11 still inside page 3
		if _, err := bg.Step([]int{s1}, []int{1}); err != nil {
			t.Fatal(err)
		}
	}
	if _, err := bg.Step([]int{s1}, []int{1}); !errors.Is(err, ErrNoFreePages) {
		t.Fatalf("step past reserved pages on empty pool: %v", err)
	}

	// Release returns every page; the freed capacity admits again.
	bg.Release(s0)
	bg.Release(s1)
	if bg.FreePages() != 9 || bg.Free() != 4 {
		t.Fatalf("after release: pages=%d slots=%d", bg.FreePages(), bg.Free())
	}
	if _, _, err := bg.Admit([]int{1}, ""); err != nil {
		t.Fatalf("re-admission after release: %v", err)
	}
}

// CanAdmit must agree with what Begin actually does.
func TestKVPageCanAdmit(t *testing.T) {
	cfg := optConfig()
	cfg.MaxSeq = 16
	m, _ := NewModel(cfg, rng.New(821))
	bg := NewBatchGeneratorPaged(NewRunner(m), 2, 4, 5)

	if !bg.CanAdmit(0) {
		t.Fatal("empty generator must admit a full-window sequence (4 pages ≤ 5 free)")
	}
	slot, err := bg.Begin("", 0)
	if err != nil {
		t.Fatal(err)
	}
	if bg.CanAdmit(0) {
		t.Fatal("1 free page cannot hold a full window")
	}
	if !bg.CanAdmit(4) {
		t.Fatal("1 free page holds a 4-token budget")
	}
	if bg.PagesFor(5) != 2 || bg.PagesFor(4) != 1 || bg.PagesFor(0) != 0 {
		t.Fatalf("PagesFor: %d %d %d", bg.PagesFor(5), bg.PagesFor(4), bg.PagesFor(0))
	}
	bg.Release(slot)
	if !bg.CanAdmit(0) {
		t.Fatal("release must restore full-window admission")
	}
}
