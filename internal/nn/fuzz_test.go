package nn

import (
	"bytes"
	"testing"

	"nora/internal/rng"
)

// FuzzLoad hardens the model reader: arbitrary byte streams must produce
// an error, never a panic or an implausible allocation.
func FuzzLoad(f *testing.F) {
	// seed with a valid model file and a few mutations
	m, err := NewModel(Config{
		Name: "fz", Arch: ArchOPT,
		Vocab: 8, DModel: 8, NHeads: 2, NLayers: 1, DFF: 8, MaxSeq: 8,
	}, rng.New(1))
	if err != nil {
		f.Fatal(err)
	}
	var buf bytes.Buffer
	if err := m.Save(&buf); err != nil {
		f.Fatal(err)
	}
	valid := buf.Bytes()
	f.Add(valid)
	f.Add([]byte("NORAMDL1"))
	f.Add([]byte{})
	truncated := append([]byte(nil), valid[:len(valid)/2]...)
	f.Add(truncated)
	corrupt := append([]byte(nil), valid...)
	for i := 9; i < 40 && i < len(corrupt); i += 3 {
		corrupt[i] ^= 0xff
	}
	f.Add(corrupt)

	f.Fuzz(func(t *testing.T, data []byte) {
		m, err := Load(bytes.NewReader(data))
		if err == nil && m == nil {
			t.Fatal("nil model with nil error")
		}
		if m != nil {
			// a successfully loaded model must be internally consistent
			if err := m.Cfg.Validate(); err != nil {
				t.Fatalf("loaded invalid config: %v", err)
			}
		}
	})
}

// FuzzCausalMask checks mask invariants over arbitrary shapes.
func FuzzCausalMask(f *testing.F) {
	f.Add(4, 0)
	f.Add(8, 3)
	f.Add(1, 1)
	f.Fuzz(func(t *testing.T, n, window int) {
		if n < 1 || n > 64 || window < 0 || window > 64 {
			t.Skip()
		}
		m := CausalMask(n, window)
		for i := 0; i < n; i++ {
			if m.At(i, i) != 0 {
				t.Fatal("diagonal must be attendable")
			}
			for j := i + 1; j < n; j++ {
				if m.At(i, j) > -1e8 {
					t.Fatal("future positions must be masked")
				}
			}
		}
	})
}
