package nn

import (
	"fmt"
	"math"

	"nora/internal/rng"
	"nora/internal/tensor"
)

// Generator performs incremental (token-at-a-time) decoding with per-layer
// key/value caches, so autoregressive generation costs O(n) attention per
// step instead of re-running the full sequence. It drives the same
// pluggable linear operators as Runner — generation runs on analog tiles
// when the Runner is an analog deployment.
type Generator struct {
	r   *Runner
	pos int

	kCache []*tensor.Matrix // per layer: MaxSeq × d, rows [0, pos) valid
	vCache []*tensor.Matrix
}

// NewGenerator returns an empty-generation state over the runner's model
// and operators.
func NewGenerator(r *Runner) *Generator {
	m := r.model
	g := &Generator{r: r}
	for range m.Blocks {
		g.kCache = append(g.kCache, tensor.New(m.Cfg.MaxSeq, m.Cfg.KVDim()))
		g.vCache = append(g.vCache, tensor.New(m.Cfg.MaxSeq, m.Cfg.KVDim()))
	}
	return g
}

// Pos returns the number of tokens consumed so far.
func (g *Generator) Pos() int { return g.pos }

// Reset clears the cache for a new sequence.
func (g *Generator) Reset() {
	g.pos = 0
}

// Append consumes one token and returns the next-token logits row
// (length vocab). It panics when the cache is full (MaxSeq tokens).
func (g *Generator) Append(token int) []float32 {
	m := g.r.model
	if g.pos >= m.Cfg.MaxSeq {
		panic(fmt.Sprintf("nn: Generator: sequence exceeds MaxSeq %d", m.Cfg.MaxSeq))
	}
	if token < 0 || token >= m.Cfg.Vocab {
		panic(fmt.Sprintf("nn: Generator: token %d out of range", token))
	}
	x := tensor.New(1, m.Cfg.DModel)
	copy(x.Row(0), m.TokEmb.Value.Row(token))
	if m.Cfg.Arch == ArchOPT {
		tensor.Axpy(1, m.PosEmb.Value.Row(g.pos), x.Row(0))
	}
	for l, b := range m.Blocks {
		x = g.stepBlock(l, b, x)
	}
	var h *tensor.Matrix
	if m.Cfg.Arch == ArchOPT {
		h = layerNormInfer(x, m.FinalNormGain.Value.Row(0), m.FinalNormBias.Value.Row(0))
	} else {
		h = rmsNormInfer(x, m.FinalNormGain.Value.Row(0))
	}
	logits := tensor.MatMul(h, m.LMHead.Value)
	g.pos++
	return logits.Row(0)
}

func (g *Generator) stepBlock(layer int, b *Block, x *tensor.Matrix) *tensor.Matrix {
	m := g.r.model
	p := func(s string) string { return fmt.Sprintf("layer%d.%s", layer, s) }

	var h *tensor.Matrix
	if m.Cfg.Arch == ArchOPT {
		h = layerNormInfer(x, b.AttnNormGain.Value.Row(0), b.AttnNormBias.Value.Row(0))
	} else {
		h = rmsNormInfer(x, b.AttnNormGain.Value.Row(0))
	}
	q := g.r.apply(p("attn.q"), h)
	k := g.r.apply(p("attn.k"), h)
	v := g.r.apply(p("attn.v"), h)
	if m.Cfg.Arch == ArchLLaMA {
		pos := []int{g.pos}
		ropeInferInPlace(q, m.Cfg.HeadDim(), pos, m.Cfg.RoPEBase)
		ropeInferInPlace(k, m.Cfg.HeadDim(), pos, m.Cfg.RoPEBase)
	}
	copy(g.kCache[layer].Row(g.pos), k.Row(0))
	copy(g.vCache[layer].Row(g.pos), v.Row(0))

	attn := g.attendCached(layer, q)
	x = tensor.Add(x, g.r.apply(p("attn.o"), attn))

	if m.Cfg.Arch == ArchOPT {
		h = layerNormInfer(x, b.MLPNormGain.Value.Row(0), b.MLPNormBias.Value.Row(0))
		h = g.r.apply(p("mlp.fc1"), h)
		h.ApplyInPlace(func(v float32) float32 {
			if v > 0 {
				return v
			}
			return 0
		})
		h = g.r.apply(p("mlp.fc2"), h)
	} else {
		h = rmsNormInfer(x, b.MLPNormGain.Value.Row(0))
		gate := g.r.apply(p("mlp.gate"), h)
		gate.ApplyInPlace(siluScalar)
		up := g.r.apply(p("mlp.up"), h)
		h = g.r.apply(p("mlp.down"), tensor.Mul(gate, up))
	}
	return tensor.Add(x, h)
}

// attendCached computes multi-head attention of the single query row q
// against the cached keys/values of layer, honoring the sliding window and
// grouped-query head sharing.
func (g *Generator) attendCached(layer int, q *tensor.Matrix) *tensor.Matrix {
	m := g.r.model
	dh := m.Cfg.HeadDim()
	group := m.Cfg.NHeads / m.Cfg.KVHeads()
	scale := float32(1 / math.Sqrt(float64(dh)))
	lo := 0
	if w := m.Cfg.Window; w > 0 && g.pos-w+1 > 0 {
		lo = g.pos - w + 1
	}
	span := g.pos - lo + 1
	out := tensor.New(1, m.Cfg.DModel)
	kc, vc := g.kCache[layer], g.vCache[layer]
	scores := make([]float32, span)
	for hIdx := 0; hIdx < m.Cfg.NHeads; hIdx++ {
		cLo, cHi := hIdx*dh, (hIdx+1)*dh
		kvLo := (hIdx / group) * dh
		qh := q.Row(0)[cLo:cHi]
		// scores over cached positions [lo, pos]
		mx := float32(math.Inf(-1))
		for t := 0; t < span; t++ {
			krow := kc.Row(lo + t)[kvLo : kvLo+dh]
			var s float32
			for c, qv := range qh {
				s += qv * krow[c]
			}
			s *= scale
			scores[t] = s
			if s > mx {
				mx = s
			}
		}
		var sum float64
		for t := range scores {
			e := float32(math.Exp(float64(scores[t] - mx)))
			scores[t] = e
			sum += float64(e)
		}
		inv := float32(1 / sum)
		orow := out.Row(0)[cLo:cHi]
		for t := 0; t < span; t++ {
			w := scores[t] * inv
			vrow := vc.Row(lo + t)[kvLo : kvLo+dh]
			for c := range orow {
				orow[c] += w * vrow[c]
			}
		}
	}
	return out
}

// Prefill consumes the prompt and returns the logits after its last token.
func (g *Generator) Prefill(tokens []int) []float32 {
	if len(tokens) == 0 {
		panic("nn: Generator.Prefill on empty prompt")
	}
	var logits []float32
	for _, tok := range tokens {
		logits = g.Append(tok)
	}
	return logits
}

// Greedy generates n tokens greedily after the prompt, returning only the
// generated continuation.
func (g *Generator) Greedy(prompt []int, n int) []int {
	logits := g.Prefill(prompt)
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		next := argmax(logits)
		out = append(out, next)
		if g.pos >= g.r.model.Cfg.MaxSeq {
			break
		}
		logits = g.Append(next)
	}
	return out
}

func argmax(xs []float32) int {
	best, bi := float32(math.Inf(-1)), 0
	for i, v := range xs {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}

// Sample generates n tokens after the prompt using temperature and top-k
// sampling (temperature ≤ 0 or topK == 1 degenerate to greedy decoding;
// topK ≤ 0 keeps the full vocabulary). r drives the categorical draws.
func (g *Generator) Sample(prompt []int, n int, temperature float64, topK int, r *rng.Rand) []int {
	logits := g.Prefill(prompt)
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		next := sampleToken(logits, temperature, topK, r)
		out = append(out, next)
		if g.pos >= g.r.model.Cfg.MaxSeq {
			break
		}
		logits = g.Append(next)
	}
	return out
}

// sampleToken draws one token id from temperature-scaled, top-k-filtered
// logits.
func sampleToken(logits []float32, temperature float64, topK int, r *rng.Rand) int {
	if temperature <= 0 || topK == 1 {
		return argmax(logits)
	}
	// Collect the top-k candidate set (or everything when topK ≤ 0).
	type cand struct {
		id int
		lg float64
	}
	cands := make([]cand, len(logits))
	for i, v := range logits {
		cands[i] = cand{i, float64(v)}
	}
	if topK > 0 && topK < len(cands) {
		// partial selection: simple selection of the k largest
		for i := 0; i < topK; i++ {
			best := i
			for j := i + 1; j < len(cands); j++ {
				if cands[j].lg > cands[best].lg {
					best = j
				}
			}
			cands[i], cands[best] = cands[best], cands[i]
		}
		cands = cands[:topK]
	}
	// Softmax over the candidates at the given temperature.
	mx := math.Inf(-1)
	for _, c := range cands {
		if c.lg > mx {
			mx = c.lg
		}
	}
	var sum float64
	weights := make([]float64, len(cands))
	for i, c := range cands {
		w := math.Exp((c.lg - mx) / temperature)
		weights[i] = w
		sum += w
	}
	u := r.Float64() * sum
	for i, w := range weights {
		u -= w
		if u <= 0 {
			return cands[i].id
		}
	}
	return cands[len(cands)-1].id
}
