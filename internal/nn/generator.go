package nn

import (
	"math"

	"nora/internal/rng"
)

// Generator performs incremental (token-at-a-time) decoding with per-layer
// key/value caches, so autoregressive generation costs O(n) attention per
// step instead of re-running the full sequence. It drives the same
// pluggable linear operators as Runner — generation runs on analog tiles
// when the Runner is an analog deployment. It is the single-sequence front
// of the shared decode machinery (decode.go); BatchGenerator drives the
// same step over many sequences at once, bit-identically per sequence.
type Generator struct {
	r  *Runner
	st *decodeState
	sc decodeScratch
}

// NewGenerator returns an empty-generation state over the runner's model
// and operators. The single sequence owns a private one-page KV pool
// spanning the whole context window — the degenerate page size, so the
// sequential path pays no paging overhead.
func NewGenerator(r *Runner) *Generator {
	m := r.model
	pool := newKVPagePool(len(m.Blocks), m.Cfg.KVDim(), m.Cfg.MaxSeq, 1)
	st := newDecodeState(r, pool)
	if err := st.reserve(m.Cfg.MaxSeq); err != nil {
		panic(err.Error()) // unreachable: the pool was sized for exactly this
	}
	return &Generator{r: r, st: st}
}

// Pos returns the number of tokens consumed so far.
func (g *Generator) Pos() int { return g.st.pos }

// Reset clears the cache for a new sequence.
func (g *Generator) Reset() {
	g.st.pos = 0
}

// AppendChecked consumes one token and returns the next-token logits row
// (length vocab, valid until the next call on this generator). It returns
// ErrCacheFull once MaxSeq tokens have been consumed and *TokenRangeError
// for out-of-vocabulary ids — the serving path maps both to 4xx responses
// instead of crashing the process. State is unchanged on error.
func (g *Generator) AppendChecked(token int) ([]float32, error) {
	g.sc.tok1[0] = token
	g.sc.seg1[0] = stepSeg{st: g.st, tokens: g.sc.tok1[:]}
	logits, err := stepSegments(g.r, g.sc.seg1[:], &g.sc)
	if err != nil {
		return nil, err
	}
	return logits.Row(0), nil
}

// Append consumes one token and returns the next-token logits row
// (length vocab). It panics when the cache is full (MaxSeq tokens) or the
// token is out of range; AppendChecked is the error-returning variant.
func (g *Generator) Append(token int) []float32 {
	logits, err := g.AppendChecked(token)
	if err != nil {
		panic(err.Error())
	}
	return logits
}

// PrefillChecked consumes the prompt and returns the logits after its last
// token (valid until the next call on this generator). Capacity and token
// range are validated up front, so a rejected prompt leaves the state
// untouched.
func (g *Generator) PrefillChecked(tokens []int) ([]float32, error) {
	m := g.r.model
	if len(tokens) == 0 {
		return nil, ErrEmptyPrompt
	}
	if g.st.pos+len(tokens) > m.Cfg.MaxSeq {
		return nil, ErrCacheFull
	}
	for _, tok := range tokens {
		if tok < 0 || tok >= m.Cfg.Vocab {
			return nil, &TokenRangeError{Token: tok, Vocab: m.Cfg.Vocab}
		}
	}
	var logits []float32
	for _, tok := range tokens {
		var err error
		if logits, err = g.AppendChecked(tok); err != nil {
			return nil, err
		}
	}
	return logits, nil
}

// Prefill consumes the prompt and returns the logits after its last token.
// It panics on invalid input; PrefillChecked is the error-returning variant.
func (g *Generator) Prefill(tokens []int) []float32 {
	logits, err := g.PrefillChecked(tokens)
	if err != nil {
		panic(err.Error())
	}
	return logits
}

// Greedy generates n tokens greedily after the prompt, returning only the
// generated continuation.
func (g *Generator) Greedy(prompt []int, n int) []int {
	logits := g.Prefill(prompt)
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		next := argmax(logits)
		out = append(out, next)
		if g.st.pos >= g.r.model.Cfg.MaxSeq {
			break
		}
		logits = g.Append(next)
	}
	return out
}

func argmax(xs []float32) int {
	best, bi := float32(math.Inf(-1)), 0
	for i, v := range xs {
		if v > best {
			best, bi = v, i
		}
	}
	return bi
}

// Sample generates n tokens after the prompt using temperature and top-k
// sampling (temperature ≤ 0 or topK == 1 degenerate to greedy decoding;
// topK ≤ 0 keeps the full vocabulary). r drives the categorical draws.
func (g *Generator) Sample(prompt []int, n int, temperature float64, topK int, r *rng.Rand) []int {
	logits := g.Prefill(prompt)
	out := make([]int, 0, n)
	for i := 0; i < n; i++ {
		next := sampleToken(logits, temperature, topK, r)
		out = append(out, next)
		if g.st.pos >= g.r.model.Cfg.MaxSeq {
			break
		}
		logits = g.Append(next)
	}
	return out
}

// SampleToken draws one token id from temperature-scaled, top-k-filtered
// logits: temperature ≤ 0 or topK == 1 select the argmax, topK ≤ 0 keeps
// the full vocabulary. r drives the categorical draw; the serving layer
// gives every request its own seed-derived stream so sampled continuations
// are reproducible.
func SampleToken(logits []float32, temperature float64, topK int, r *rng.Rand) int {
	return sampleToken(logits, temperature, topK, r)
}

// sampleToken draws one token id from temperature-scaled, top-k-filtered
// logits.
func sampleToken(logits []float32, temperature float64, topK int, r *rng.Rand) int {
	if temperature <= 0 || topK == 1 {
		return argmax(logits)
	}
	// Collect the top-k candidate set (or everything when topK ≤ 0).
	type cand struct {
		id int
		lg float64
	}
	cands := make([]cand, len(logits))
	for i, v := range logits {
		cands[i] = cand{i, float64(v)}
	}
	if topK > 0 && topK < len(cands) {
		// partial selection: simple selection of the k largest
		for i := 0; i < topK; i++ {
			best := i
			for j := i + 1; j < len(cands); j++ {
				if cands[j].lg > cands[best].lg {
					best = j
				}
			}
			cands[i], cands[best] = cands[best], cands[i]
		}
		cands = cands[:topK]
	}
	// Softmax over the candidates at the given temperature.
	mx := math.Inf(-1)
	for _, c := range cands {
		if c.lg > mx {
			mx = c.lg
		}
	}
	var sum float64
	weights := make([]float64, len(cands))
	for i, c := range cands {
		w := math.Exp((c.lg - mx) / temperature)
		weights[i] = w
		sum += w
	}
	u := r.Float64() * sum
	for i, w := range weights {
		u -= w
		if u <= 0 {
			return cands[i].id
		}
	}
	return cands[len(cands)-1].id
}
