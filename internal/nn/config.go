// Package nn implements the transformer substrate of the NORA reproduction:
// OPT-style and LLaMA/Mistral-style decoder architectures with
//
//   - a training forward pass built on the autograd tape, and
//   - an inference forward pass (Runner) in which every weight-bearing
//     linear layer is a pluggable LinearOp, so that linears can be swapped
//     for analog CIM tiles exactly as the paper converts nn.Linear into
//     AnalogLinear while keeping normalization, activation functions and
//     self-attention digital (paper §V, Fig. 2b).
package nn

import "fmt"

// Arch selects the transformer family.
type Arch int

const (
	// ArchOPT is the OPT-style decoder: pre-LayerNorm, learned positional
	// embeddings, biased linears, ReLU MLP.
	ArchOPT Arch = iota
	// ArchLLaMA is the LLaMA-style decoder: RMSNorm, rotary position
	// embeddings, bias-free linears, SwiGLU MLP.
	ArchLLaMA
)

func (a Arch) String() string {
	switch a {
	case ArchOPT:
		return "opt"
	case ArchLLaMA:
		return "llama"
	default:
		return fmt.Sprintf("arch(%d)", int(a))
	}
}

// Config describes a transformer model instance.
type Config struct {
	Name    string // registry name, e.g. "opt-c3"
	Arch    Arch
	Vocab   int // vocabulary size
	DModel  int // residual width
	NHeads  int // attention (query) heads (DModel % NHeads == 0)
	NLayers int // transformer blocks
	DFF     int // MLP hidden width
	MaxSeq  int // maximum sequence length (positional table size)

	// NKVHeads enables grouped-query attention: the key/value projections
	// produce only NKVHeads heads, each shared by NHeads/NKVHeads query
	// heads (LLaMA-3-style GQA). 0 means NKVHeads == NHeads (standard
	// multi-head attention).
	NKVHeads int

	// RoPEBase is the rotary base frequency (LLaMA arch only).
	RoPEBase float64
	// Window limits attention to the previous Window positions when > 0
	// (Mistral-style sliding-window attention). 0 means full causal.
	Window int
}

// Validate checks internal consistency.
func (c Config) Validate() error {
	switch {
	case c.Vocab <= 0 || c.DModel <= 0 || c.NLayers <= 0 || c.DFF <= 0 || c.MaxSeq <= 0:
		return fmt.Errorf("nn: config %q has non-positive dimension", c.Name)
	case c.NHeads <= 0 || c.DModel%c.NHeads != 0:
		return fmt.Errorf("nn: config %q: DModel %d not divisible by NHeads %d", c.Name, c.DModel, c.NHeads)
	case c.Arch == ArchLLaMA && (c.DModel/c.NHeads)%2 != 0:
		return fmt.Errorf("nn: config %q: RoPE needs even head dim, got %d", c.Name, c.DModel/c.NHeads)
	case c.Arch == ArchLLaMA && c.RoPEBase <= 0:
		return fmt.Errorf("nn: config %q: LLaMA arch requires RoPEBase > 0", c.Name)
	case c.Window < 0:
		return fmt.Errorf("nn: config %q: negative attention window", c.Name)
	case c.NKVHeads < 0 || (c.NKVHeads > 0 && (c.NKVHeads > c.NHeads || c.NHeads%c.NKVHeads != 0)):
		return fmt.Errorf("nn: config %q: NKVHeads %d must divide NHeads %d", c.Name, c.NKVHeads, c.NHeads)
	}
	return nil
}

// HeadDim returns DModel / NHeads.
func (c Config) HeadDim() int { return c.DModel / c.NHeads }

// KVHeads returns the effective number of key/value heads.
func (c Config) KVHeads() int {
	if c.NKVHeads > 0 {
		return c.NKVHeads
	}
	return c.NHeads
}

// KVDim returns the width of the key/value projections.
func (c Config) KVDim() int { return c.KVHeads() * c.HeadDim() }
