package nn

import (
	"bufio"
	"encoding/binary"
	"fmt"
	"io"
	"math"
	"os"
	"path/filepath"

	"nora/internal/rng"
)

// Model files use a simple little-endian binary format:
//
//	magic "NORAMDL2"
//	config: name, arch, vocab, dmodel, nheads, nlayers, dff, maxseq,
//	        window, nkvheads, ropeBase (float64)
//	param count, then per parameter: name, rows, cols, float32 data
//
// Parameters are written in Params() order and verified by name and shape
// on load. Version-1 files (no NKVHeads field) remain loadable.
const (
	modelMagic   = "NORAMDL2"
	modelMagicV1 = "NORAMDL1"
)

func writeString(w io.Writer, s string) error {
	if err := binary.Write(w, binary.LittleEndian, uint32(len(s))); err != nil {
		return err
	}
	_, err := io.WriteString(w, s)
	return err
}

func readString(r io.Reader) (string, error) {
	var n uint32
	if err := binary.Read(r, binary.LittleEndian, &n); err != nil {
		return "", err
	}
	if n > 1<<20 {
		return "", fmt.Errorf("nn: unreasonable string length %d", n)
	}
	buf := make([]byte, n)
	if _, err := io.ReadFull(r, buf); err != nil {
		return "", err
	}
	return string(buf), nil
}

// Save writes the model to w.
func (m *Model) Save(w io.Writer) error {
	bw := bufio.NewWriter(w)
	if _, err := io.WriteString(bw, modelMagic); err != nil {
		return err
	}
	if err := writeString(bw, m.Cfg.Name); err != nil {
		return err
	}
	ints := []int64{
		int64(m.Cfg.Arch), int64(m.Cfg.Vocab), int64(m.Cfg.DModel),
		int64(m.Cfg.NHeads), int64(m.Cfg.NLayers), int64(m.Cfg.DFF),
		int64(m.Cfg.MaxSeq), int64(m.Cfg.Window), int64(m.Cfg.NKVHeads),
	}
	for _, v := range ints {
		if err := binary.Write(bw, binary.LittleEndian, v); err != nil {
			return err
		}
	}
	if err := binary.Write(bw, binary.LittleEndian, m.Cfg.RoPEBase); err != nil {
		return err
	}
	params := m.Params()
	if err := binary.Write(bw, binary.LittleEndian, uint32(len(params))); err != nil {
		return err
	}
	for _, p := range params {
		if err := writeString(bw, p.Name); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, int64(p.Value.Rows)); err != nil {
			return err
		}
		if err := binary.Write(bw, binary.LittleEndian, int64(p.Value.Cols)); err != nil {
			return err
		}
		buf := make([]byte, 4*len(p.Value.Data))
		for i, v := range p.Value.Data {
			binary.LittleEndian.PutUint32(buf[4*i:], math.Float32bits(v))
		}
		if _, err := bw.Write(buf); err != nil {
			return err
		}
	}
	return bw.Flush()
}

// Load reads a model previously written by Save.
func Load(r io.Reader) (*Model, error) {
	br := bufio.NewReader(r)
	magic := make([]byte, len(modelMagic))
	if _, err := io.ReadFull(br, magic); err != nil {
		return nil, fmt.Errorf("nn: reading magic: %w", err)
	}
	nInts := 9
	switch string(magic) {
	case modelMagic:
	case modelMagicV1:
		nInts = 8
	default:
		return nil, fmt.Errorf("nn: bad magic %q", magic)
	}
	var cfg Config
	name, err := readString(br)
	if err != nil {
		return nil, err
	}
	cfg.Name = name
	ints := make([]int64, nInts)
	for i := range ints {
		if err := binary.Read(br, binary.LittleEndian, &ints[i]); err != nil {
			return nil, err
		}
	}
	cfg.Arch = Arch(ints[0])
	cfg.Vocab, cfg.DModel, cfg.NHeads = int(ints[1]), int(ints[2]), int(ints[3])
	cfg.NLayers, cfg.DFF, cfg.MaxSeq = int(ints[4]), int(ints[5]), int(ints[6])
	cfg.Window = int(ints[7])
	if nInts > 8 {
		cfg.NKVHeads = int(ints[8])
	}
	if err := binary.Read(br, binary.LittleEndian, &cfg.RoPEBase); err != nil {
		return nil, err
	}
	// Reject corrupt or hostile headers before NewModel allocates: a few
	// flipped bytes must not turn into a multi-gigabyte allocation.
	const maxDim = 1 << 20
	for _, v := range []int{cfg.Vocab, cfg.DModel, cfg.NHeads, cfg.NLayers, cfg.DFF, cfg.MaxSeq} {
		if v < 0 || v > maxDim {
			return nil, fmt.Errorf("nn: implausible config dimension %d", v)
		}
	}
	if cfg.Window < 0 || cfg.Window > maxDim {
		return nil, fmt.Errorf("nn: implausible window %d", cfg.Window)
	}
	total := int64(cfg.Vocab)*int64(cfg.DModel) +
		int64(cfg.NLayers)*int64(cfg.DModel)*(4*int64(cfg.DModel)+3*int64(cfg.DFF)) +
		int64(cfg.MaxSeq)*int64(cfg.DModel)
	if total > 1<<26 { // 64M core params ≈ 256 MB — far above any zoo model
		return nil, fmt.Errorf("nn: model too large to load (%d core params)", total)
	}
	m, err := NewModel(cfg, rng.New(0))
	if err != nil {
		return nil, err
	}
	var count uint32
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, err
	}
	params := m.Params()
	if int(count) != len(params) {
		return nil, fmt.Errorf("nn: file has %d params, model expects %d", count, len(params))
	}
	for _, p := range params {
		pname, err := readString(br)
		if err != nil {
			return nil, err
		}
		if pname != p.Name {
			return nil, fmt.Errorf("nn: param order mismatch: file %q vs model %q", pname, p.Name)
		}
		var rows, cols int64
		if err := binary.Read(br, binary.LittleEndian, &rows); err != nil {
			return nil, err
		}
		if err := binary.Read(br, binary.LittleEndian, &cols); err != nil {
			return nil, err
		}
		if int(rows) != p.Value.Rows || int(cols) != p.Value.Cols {
			return nil, fmt.Errorf("nn: param %q shape %dx%d, model expects %dx%d",
				pname, rows, cols, p.Value.Rows, p.Value.Cols)
		}
		buf := make([]byte, 4*int(rows)*int(cols))
		if _, err := io.ReadFull(br, buf); err != nil {
			return nil, err
		}
		for i := range p.Value.Data {
			p.Value.Data[i] = math.Float32frombits(binary.LittleEndian.Uint32(buf[4*i:]))
		}
	}
	return m, nil
}

// SaveFile writes the model to path atomically: the bytes go to a temp file
// in the same directory, fsynced, then renamed over path. A crash mid-write
// can leave a stray temp file but never a truncated model at path.
func (m *Model) SaveFile(path string) error {
	dir, base := filepath.Split(path)
	f, err := os.CreateTemp(dir, base+".tmp*")
	if err != nil {
		return err
	}
	tmp := f.Name()
	cleanup := func(err error) error {
		f.Close()
		os.Remove(tmp)
		return err
	}
	if err := m.Save(f); err != nil {
		return cleanup(err)
	}
	if err := f.Sync(); err != nil {
		return cleanup(err)
	}
	// CreateTemp opens 0600; published checkpoints should be world-readable
	// like any other written file (umask still applies via Chmod semantics).
	if err := f.Chmod(0o644); err != nil {
		return cleanup(err)
	}
	if err := f.Close(); err != nil {
		os.Remove(tmp)
		return err
	}
	if err := os.Rename(tmp, path); err != nil {
		os.Remove(tmp)
		return err
	}
	return nil
}

// LoadFile reads a model from path.
func LoadFile(path string) (*Model, error) {
	f, err := os.Open(path)
	if err != nil {
		return nil, err
	}
	defer f.Close()
	return Load(f)
}
