package nn

import (
	"errors"
	"fmt"
)

// Paged KV-cache storage. Instead of one MaxSeq×KVDim slab per layer per
// sequence, every sequence's keys and values live in fixed-size pages drawn
// from a shared freelist: a page holds pageTokens consecutive positions of
// every layer's K and V rows, so a sequence of n tokens occupies exactly
// ceil(n/pageTokens) pages regardless of the context window. Admission
// capacity is therefore governed by pages — many short sequences fit where
// slab storage would have reserved worst-case memory for each — and a long
// prompt only ties up the pages it actually fills. Page granularity is a
// pure storage layout: attendCachedRow walks the same positions in the same
// order whatever the page size, so results are bit-identical across page
// sizes (pinned by the decode determinism tests).

// ErrNoFreePages reports an admission or prefill that needs more KV pages
// than the pool has free. The serving path maps it to 429, exactly like
// ErrNoFreeSlot.
var ErrNoFreePages = errors.New("nn: decode: KV page pool exhausted")

// DefaultKVPageTokens is the default page granularity in token positions.
const DefaultKVPageTokens = 16

// kvPagePool is a fixed pool of KV pages shared by every slot of one
// BatchGenerator (or owned wholesale by one Generator). All pages are
// allocated eagerly at construction, so steady-state admission and release
// are freelist pushes/pops with no heap traffic.
type kvPagePool struct {
	layers     int
	kvDim      int
	pageTokens int
	pageLen    int // layers × 2 (K and V) × pageTokens × kvDim floats
	total      int
	free       [][]float32
}

func newKVPagePool(layers, kvDim, pageTokens, totalPages int) *kvPagePool {
	if layers <= 0 || kvDim <= 0 || pageTokens <= 0 || totalPages <= 0 {
		panic(fmt.Sprintf("nn: kvPagePool(layers=%d, kvDim=%d, pageTokens=%d, totalPages=%d): non-positive dimension",
			layers, kvDim, pageTokens, totalPages))
	}
	p := &kvPagePool{
		layers:     layers,
		kvDim:      kvDim,
		pageTokens: pageTokens,
		pageLen:    layers * 2 * pageTokens * kvDim,
		total:      totalPages,
		free:       make([][]float32, totalPages),
	}
	backing := make([]float32, totalPages*p.pageLen)
	for i := range p.free {
		p.free[i] = backing[i*p.pageLen : (i+1)*p.pageLen : (i+1)*p.pageLen]
	}
	return p
}

// pagesFor returns the number of pages a sequence of n token positions
// occupies.
func (p *kvPagePool) pagesFor(n int) int {
	if n <= 0 {
		return 0
	}
	return (n + p.pageTokens - 1) / p.pageTokens
}

func (p *kvPagePool) take() ([]float32, error) {
	if len(p.free) == 0 {
		return nil, ErrNoFreePages
	}
	pg := p.free[len(p.free)-1]
	p.free[len(p.free)-1] = nil
	p.free = p.free[:len(p.free)-1]
	return pg, nil
}

func (p *kvPagePool) put(pg []float32) {
	p.free = append(p.free, pg)
}

// reserve grows st's page list until it covers at least n token positions,
// taking pages from the pool. On ErrNoFreePages the pages grabbed so far are
// kept (they are released with the slot); positions already cached are never
// moved.
func (st *decodeState) reserve(n int) error {
	need := st.pool.pagesFor(n)
	for len(st.pages) < need {
		pg, err := st.pool.take()
		if err != nil {
			return err
		}
		st.pages = append(st.pages, pg)
	}
	return nil
}

// releasePages returns every page to the pool. The page list keeps its
// capacity for the next admission.
func (st *decodeState) releasePages() {
	for i, pg := range st.pages {
		st.pool.put(pg)
		st.pages[i] = nil
	}
	st.pages = st.pages[:0]
}

// kvAt returns the K and V cache rows (length KVDim each) of one position in
// one layer. Within a page, layer l's K rows occupy a contiguous
// pageTokens×kvDim block at offset l·2·pageTokens·kvDim, followed by the V
// block — attendCachedRow iterates positions page-segment by page-segment so
// its inner loops stay contiguous.
func (st *decodeState) kvAt(layer, pos int) (k, v []float32) {
	pt, d := st.pool.pageTokens, st.pool.kvDim
	pg := st.pages[pos/pt]
	kOff := (layer*2*pt + pos%pt) * d
	vOff := kOff + pt*d
	return pg[kOff : kOff+d : kOff+d], pg[vOff : vOff+d : vOff+d]
}
