// Package textgen generates the synthetic language-modeling workload that
// stands in for the paper's datasets (see DESIGN.md §2):
//
//   - The *evaluation* protocol mirrors Lambada's last-word prediction:
//     each sequence carries a key token early in the context, a stretch of
//     Markov filler text, a query trigger, and a final answer token that is
//     a fixed permutation of the key. Predicting the answer requires
//     attending across the whole context — the "broad discourse context"
//     property Lambada was built to test.
//   - The *calibration* split (the Pile stand-in) draws from the same
//     generator family with a disjoint stream, since NORA's calibration
//     only needs in-distribution per-channel activation maxima.
package textgen

import (
	"fmt"

	"nora/internal/rng"
)

// Config describes a synthetic corpus.
type Config struct {
	Vocab   int    // total vocabulary size
	NumKeys int    // number of distinct key (and answer) tokens
	SeqLen  int    // generated sequence length, answer at position SeqLen-1
	KeyLo   int    // earliest key position (≥ 1, after BOS)
	KeyHi   int    // latest key position (inclusive)
	Seed    uint64 // corpus identity: permutation + Markov table
}

// Token layout within the vocabulary:
//
//	0                  BOS
//	1                  QUERY trigger
//	[2, 2+K)           keys
//	[2+K, 2+2K)        answers
//	[2+2K, Vocab)      filler
const (
	TokenBOS   = 0
	TokenQuery = 1
	tokenKey0  = 2
)

// Validate checks the configuration.
func (c Config) Validate() error {
	fillerLo := tokenKey0 + 2*c.NumKeys
	switch {
	case c.NumKeys < 2:
		return fmt.Errorf("textgen: need ≥ 2 keys, got %d", c.NumKeys)
	case c.Vocab < fillerLo+4:
		return fmt.Errorf("textgen: vocab %d too small for %d keys (need ≥ %d)", c.Vocab, c.NumKeys, fillerLo+4)
	case c.SeqLen < 6:
		return fmt.Errorf("textgen: SeqLen %d too short", c.SeqLen)
	case c.KeyLo < 1 || c.KeyHi < c.KeyLo || c.KeyHi > c.SeqLen-3:
		return fmt.Errorf("textgen: key window [%d,%d] invalid for SeqLen %d", c.KeyLo, c.KeyHi, c.SeqLen)
	}
	return nil
}

// Corpus is a deterministic synthetic text distribution.
type Corpus struct {
	cfg  Config
	perm []int       // key index → answer index
	cdf  [][]float32 // filler Markov transition CDFs
}

// New builds a corpus from cfg. The key→answer permutation and the filler
// Markov chain are pure functions of cfg.Seed.
func New(cfg Config) (*Corpus, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	root := rng.New(cfg.Seed)
	c := &Corpus{cfg: cfg}
	c.perm = root.Split("perm").Perm(cfg.NumKeys)

	// Sparse-ish random row-stochastic transition table over filler tokens.
	nf := c.numFiller()
	tr := root.Split("markov")
	c.cdf = make([][]float32, nf)
	for i := 0; i < nf; i++ {
		weights := make([]float32, nf)
		var sum float32
		for j := range weights {
			w := tr.Float32()
			if w < 0.55 { // sparsify: ~55% of transitions are (nearly) absent
				w = 0.01
			}
			weights[j] = w
			sum += w
		}
		cdf := make([]float32, nf)
		var acc float32
		for j, w := range weights {
			acc += w / sum
			cdf[j] = acc
		}
		cdf[nf-1] = 1
		c.cdf[i] = cdf
	}
	return c, nil
}

// Cfg returns the corpus configuration.
func (c *Corpus) Cfg() Config { return c.cfg }

// Vocab returns the vocabulary size.
func (c *Corpus) Vocab() int { return c.cfg.Vocab }

func (c *Corpus) numFiller() int { return c.cfg.Vocab - tokenKey0 - 2*c.cfg.NumKeys }

func (c *Corpus) fillerBase() int { return tokenKey0 + 2*c.cfg.NumKeys }

// KeyToken returns the vocabulary id of key i.
func (c *Corpus) KeyToken(i int) int { return tokenKey0 + i }

// AnswerToken returns the vocabulary id of the answer for key i (through
// the corpus permutation).
func (c *Corpus) AnswerToken(i int) int { return tokenKey0 + c.cfg.NumKeys + c.perm[i] }

// ChanceAccuracy is the accuracy of guessing answers uniformly.
func (c *Corpus) ChanceAccuracy() float64 { return 1 / float64(c.cfg.NumKeys) }

// nextFiller samples a filler token following prev (a filler token id, or
// -1 to draw from the uniform initial distribution).
func (c *Corpus) nextFiller(r *rng.Rand, prev int) int {
	nf := c.numFiller()
	if prev < 0 {
		return c.fillerBase() + r.Intn(nf)
	}
	row := c.cdf[prev-c.fillerBase()]
	u := r.Float32()
	for j, acc := range row {
		if u <= acc {
			return c.fillerBase() + j
		}
	}
	return c.fillerBase() + nf - 1
}

// Sample draws one sequence of length SeqLen:
//
//	BOS  filler…  KEY  filler…  QUERY  ANSWER
//
// with the key position uniform in [KeyLo, KeyHi].
func (c *Corpus) Sample(r *rng.Rand) []int {
	n := c.cfg.SeqLen
	seq := make([]int, n)
	seq[0] = TokenBOS
	keyIdx := r.Intn(c.cfg.NumKeys)
	keyPos := c.cfg.KeyLo + r.Intn(c.cfg.KeyHi-c.cfg.KeyLo+1)
	prev := -1
	for i := 1; i < n-2; i++ {
		if i == keyPos {
			seq[i] = c.KeyToken(keyIdx)
			continue // filler chain resumes from its previous state
		}
		prev = c.nextFiller(r, prev)
		seq[i] = prev
	}
	seq[n-2] = TokenQuery
	seq[n-1] = c.AnswerToken(keyIdx)
	return seq
}

// Batch draws n sequences.
func (c *Corpus) Batch(r *rng.Rand, n int) [][]int {
	out := make([][]int, n)
	for i := range out {
		out[i] = c.Sample(r)
	}
	return out
}

// Split returns a deterministic named dataset of n sequences; distinct
// names give disjoint streams. Conventional names: "train", "calibration"
// (the Pile stand-in), "eval" (the Lambada stand-in).
func (c *Corpus) Split(name string, n int) [][]int {
	r := rng.New(c.cfg.Seed).Split("split:" + name)
	return c.Batch(r, n)
}

// DefaultConfig is the corpus used by the model zoo: 64-token vocabulary,
// 12 keys, sequences of 32 tokens with the key in positions 1..8.
func DefaultConfig(seed uint64) Config {
	return Config{Vocab: 64, NumKeys: 12, SeqLen: 32, KeyLo: 1, KeyHi: 8, Seed: seed}
}
