package textgen

import (
	"fmt"

	"nora/internal/rng"
)

// MajorityConfig describes the second synthetic benchmark (the paper's
// §VII asks for additional benchmarks beyond Lambada): each sequence is a
// stream of tokens from two classes, and the final answer token names the
// class holding the majority. Solving it requires *aggregating* evidence
// across the whole context — a different computation than the key-recall
// task, which requires *retrieving* a single token.
type MajorityConfig struct {
	Vocab       int     // total vocabulary size (shared layout with Config)
	ClassTokens int     // distinct tokens per class
	SeqLen      int     // sequence length; body length must come out odd
	Bias        float64 // per-token probability of drawing the majority class
	Seed        uint64
}

// Majority token layout:
//
//	0                        BOS
//	1                        QUERY
//	[2, 2+C)                 class-A tokens
//	[2+C, 2+2C)              class-B tokens
//	2+2C, 2+2C+1             answer tokens (A-majority, B-majority)
const majorityAnswerBase = tokenKey0

// Validate checks the configuration. The body (SeqLen−3 tokens between BOS
// and QUERY) must have odd length so a majority always exists.
func (c MajorityConfig) Validate() error {
	switch {
	case c.ClassTokens < 1:
		return fmt.Errorf("textgen: majority needs ≥ 1 token per class")
	case c.Vocab < 2+2*c.ClassTokens+2:
		return fmt.Errorf("textgen: majority vocab %d too small for %d class tokens", c.Vocab, c.ClassTokens)
	case c.SeqLen < 7:
		return fmt.Errorf("textgen: majority SeqLen %d too short", c.SeqLen)
	case (c.SeqLen-3)%2 == 0:
		return fmt.Errorf("textgen: majority body length %d must be odd", c.SeqLen-3)
	case c.Bias <= 0.5 || c.Bias >= 1:
		return fmt.Errorf("textgen: majority bias %v must be in (0.5, 1)", c.Bias)
	}
	return nil
}

// MajorityCorpus generates majority-vote sequences. It exposes the same
// Sample/Batch/Split/ChanceAccuracy surface as Corpus.
type MajorityCorpus struct {
	cfg MajorityConfig
}

// NewMajority builds a majority corpus.
func NewMajority(cfg MajorityConfig) (*MajorityCorpus, error) {
	if err := cfg.Validate(); err != nil {
		return nil, err
	}
	return &MajorityCorpus{cfg: cfg}, nil
}

// Cfg returns the corpus configuration.
func (c *MajorityCorpus) Cfg() MajorityConfig { return c.cfg }

// Vocab returns the vocabulary size.
func (c *MajorityCorpus) Vocab() int { return c.cfg.Vocab }

// ClassAToken returns the i-th class-A token id.
func (c *MajorityCorpus) ClassAToken(i int) int { return tokenKey0 + i }

// ClassBToken returns the i-th class-B token id.
func (c *MajorityCorpus) ClassBToken(i int) int { return tokenKey0 + c.cfg.ClassTokens + i }

// AnswerToken returns the answer id for class 0 (A) or 1 (B).
func (c *MajorityCorpus) AnswerToken(class int) int {
	return majorityAnswerBase + 2*c.cfg.ClassTokens + class
}

// ChanceAccuracy is 0.5 (two possible answers).
func (c *MajorityCorpus) ChanceAccuracy() float64 { return 0.5 }

// Sample draws one sequence: BOS, an odd-length body of class tokens with
// a biased majority, QUERY, and the answer named by the *actual* majority
// of the emitted body.
func (c *MajorityCorpus) Sample(r *rng.Rand) []int {
	n := c.cfg.SeqLen
	seq := make([]int, n)
	seq[0] = TokenBOS
	majority := r.Intn(2)
	countA := 0
	for i := 1; i < n-2; i++ {
		class := majority
		if float64(r.Float32()) >= c.cfg.Bias {
			class = 1 - majority
		}
		tok := c.ClassAToken(r.Intn(c.cfg.ClassTokens))
		if class == 1 {
			tok = c.ClassBToken(r.Intn(c.cfg.ClassTokens))
		} else {
			countA++
		}
		seq[i] = tok
	}
	seq[n-2] = TokenQuery
	body := n - 3
	actual := 1
	if countA*2 > body {
		actual = 0
	}
	seq[n-1] = c.AnswerToken(actual)
	return seq
}

// Batch draws n sequences.
func (c *MajorityCorpus) Batch(r *rng.Rand, n int) [][]int {
	out := make([][]int, n)
	for i := range out {
		out[i] = c.Sample(r)
	}
	return out
}

// Split returns a deterministic named dataset of n sequences.
func (c *MajorityCorpus) Split(name string, n int) [][]int {
	r := rng.New(c.cfg.Seed).Split("majority:" + name)
	return c.Batch(r, n)
}

// DefaultMajorityConfig matches the zoo's vocabulary and sequence length:
// 64-token vocabulary, 6 tokens per class, 32-token sequences (29-token
// odd body), bias 0.7.
func DefaultMajorityConfig(seed uint64) MajorityConfig {
	return MajorityConfig{Vocab: 64, ClassTokens: 6, SeqLen: 32, Bias: 0.7, Seed: seed}
}
