package textgen

import (
	"testing"

	"nora/internal/rng"
)

func TestMajorityValidate(t *testing.T) {
	if err := DefaultMajorityConfig(1).Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	cases := map[string]func(c *MajorityConfig){
		"no-classes": func(c *MajorityConfig) { c.ClassTokens = 0 },
		"tiny-vocab": func(c *MajorityConfig) { c.Vocab = 10 },
		"short":      func(c *MajorityConfig) { c.SeqLen = 5 },
		"even-body":  func(c *MajorityConfig) { c.SeqLen = 33 },
		"low-bias":   func(c *MajorityConfig) { c.Bias = 0.5 },
		"high-bias":  func(c *MajorityConfig) { c.Bias = 1 },
	}
	for name, mutate := range cases {
		c := DefaultMajorityConfig(1)
		mutate(&c)
		if c.Validate() == nil {
			t.Fatalf("%s: invalid config accepted", name)
		}
	}
	if _, err := NewMajority(MajorityConfig{}); err == nil {
		t.Fatal("NewMajority accepted zero config")
	}
}

func TestMajoritySampleStructure(t *testing.T) {
	c, err := NewMajority(DefaultMajorityConfig(2))
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(3)
	answers := map[int]int{}
	for trial := 0; trial < 300; trial++ {
		seq := c.Sample(r)
		cfg := c.Cfg()
		if len(seq) != cfg.SeqLen || seq[0] != TokenBOS || seq[cfg.SeqLen-2] != TokenQuery {
			t.Fatal("frame tokens wrong")
		}
		countA, countB := 0, 0
		for _, tok := range seq[1 : cfg.SeqLen-2] {
			switch {
			case tok >= tokenKey0 && tok < tokenKey0+cfg.ClassTokens:
				countA++
			case tok >= tokenKey0+cfg.ClassTokens && tok < tokenKey0+2*cfg.ClassTokens:
				countB++
			default:
				t.Fatalf("body token %d outside class ranges", tok)
			}
		}
		if countA+countB != cfg.SeqLen-3 {
			t.Fatal("body length wrong")
		}
		if countA == countB {
			t.Fatal("odd body must never tie")
		}
		want := c.AnswerToken(1)
		if countA > countB {
			want = c.AnswerToken(0)
		}
		if seq[cfg.SeqLen-1] != want {
			t.Fatalf("answer %d does not match actual majority (A=%d B=%d)", seq[cfg.SeqLen-1], countA, countB)
		}
		answers[seq[cfg.SeqLen-1]]++
	}
	// both answers occur with reasonable balance
	if len(answers) != 2 {
		t.Fatalf("answers seen: %v", answers)
	}
	for tok, n := range answers {
		if n < 60 {
			t.Fatalf("answer %d occurs only %d/300 times", tok, n)
		}
	}
}

func TestMajorityDeterministicSplits(t *testing.T) {
	a, _ := NewMajority(DefaultMajorityConfig(7))
	b, _ := NewMajority(DefaultMajorityConfig(7))
	sa, sb := a.Split("eval", 10), b.Split("eval", 10)
	for i := range sa {
		for j := range sa[i] {
			if sa[i][j] != sb[i][j] {
				t.Fatal("same seed must reproduce")
			}
		}
	}
	other := a.Split("train", 10)
	same := true
	for j := range sa[0] {
		if sa[0][j] != other[0][j] {
			same = false
			break
		}
	}
	if same {
		t.Fatal("different splits should differ")
	}
}

func TestMajorityChance(t *testing.T) {
	c, _ := NewMajority(DefaultMajorityConfig(9))
	if c.ChanceAccuracy() != 0.5 {
		t.Fatal("chance accuracy must be 0.5")
	}
}

func TestMajorityTokenLayoutDisjoint(t *testing.T) {
	c, _ := NewMajority(DefaultMajorityConfig(10))
	cfg := c.Cfg()
	seen := map[int]bool{TokenBOS: true, TokenQuery: true}
	add := func(tok int) {
		if tok >= cfg.Vocab {
			t.Fatalf("token %d outside vocab", tok)
		}
		if seen[tok] {
			t.Fatalf("token %d reused", tok)
		}
		seen[tok] = true
	}
	for i := 0; i < cfg.ClassTokens; i++ {
		add(c.ClassAToken(i))
		add(c.ClassBToken(i))
	}
	add(c.AnswerToken(0))
	add(c.AnswerToken(1))
}
