package textgen

import (
	"testing"
	"testing/quick"

	"nora/internal/rng"
)

func testConfig() Config { return DefaultConfig(7) }

func TestValidate(t *testing.T) {
	if err := testConfig().Validate(); err != nil {
		t.Fatalf("default config invalid: %v", err)
	}
	cases := map[string]func(c *Config){
		"one-key":      func(c *Config) { c.NumKeys = 1 },
		"tiny-vocab":   func(c *Config) { c.Vocab = 10 },
		"short-seq":    func(c *Config) { c.SeqLen = 4 },
		"key-at-bos":   func(c *Config) { c.KeyLo = 0 },
		"key-too-late": func(c *Config) { c.KeyHi = c.SeqLen - 1 },
		"key-inverted": func(c *Config) { c.KeyLo = 5; c.KeyHi = 3 },
	}
	for name, mutate := range cases {
		c := testConfig()
		mutate(&c)
		if c.Validate() == nil {
			t.Fatalf("%s: invalid config accepted", name)
		}
	}
}

func TestNewRejectsInvalid(t *testing.T) {
	c := testConfig()
	c.NumKeys = 1
	if _, err := New(c); err == nil {
		t.Fatal("New accepted invalid config")
	}
}

func TestSampleStructure(t *testing.T) {
	c, err := New(testConfig())
	if err != nil {
		t.Fatal(err)
	}
	r := rng.New(1)
	for trial := 0; trial < 200; trial++ {
		seq := c.Sample(r)
		cfg := c.Cfg()
		if len(seq) != cfg.SeqLen {
			t.Fatalf("len = %d", len(seq))
		}
		if seq[0] != TokenBOS {
			t.Fatal("missing BOS")
		}
		if seq[cfg.SeqLen-2] != TokenQuery {
			t.Fatal("missing QUERY before answer")
		}
		// exactly one key, inside the window, and the answer matches it
		keyCount, keyIdx, keyPos := 0, -1, -1
		for i, tok := range seq {
			if tok >= tokenKey0 && tok < tokenKey0+cfg.NumKeys {
				keyCount++
				keyIdx = tok - tokenKey0
				keyPos = i
			}
		}
		if keyCount != 1 {
			t.Fatalf("found %d keys", keyCount)
		}
		if keyPos < cfg.KeyLo || keyPos > cfg.KeyHi {
			t.Fatalf("key at %d outside [%d,%d]", keyPos, cfg.KeyLo, cfg.KeyHi)
		}
		if seq[cfg.SeqLen-1] != c.AnswerToken(keyIdx) {
			t.Fatal("answer does not match key")
		}
		// every token in range
		for _, tok := range seq {
			if tok < 0 || tok >= cfg.Vocab {
				t.Fatalf("token %d out of vocab", tok)
			}
		}
	}
}

func TestPermutationIsBijection(t *testing.T) {
	c, _ := New(testConfig())
	seen := map[int]bool{}
	for i := 0; i < c.Cfg().NumKeys; i++ {
		a := c.AnswerToken(i)
		lo := tokenKey0 + c.Cfg().NumKeys
		if a < lo || a >= lo+c.Cfg().NumKeys {
			t.Fatalf("answer token %d out of answer range", a)
		}
		if seen[a] {
			t.Fatalf("answer %d repeated", a)
		}
		seen[a] = true
	}
}

func TestDeterminismBySeed(t *testing.T) {
	a, _ := New(testConfig())
	b, _ := New(testConfig())
	sa := a.Split("eval", 5)
	sb := b.Split("eval", 5)
	for i := range sa {
		for j := range sa[i] {
			if sa[i][j] != sb[i][j] {
				t.Fatal("same seed + split must reproduce identical data")
			}
		}
	}
}

func TestSplitsDisjointStreams(t *testing.T) {
	c, _ := New(testConfig())
	train := c.Split("train", 20)
	eval := c.Split("eval", 20)
	same := 0
	for i := range train {
		identical := true
		for j := range train[i] {
			if train[i][j] != eval[i][j] {
				identical = false
				break
			}
		}
		if identical {
			same++
		}
	}
	if same > 1 {
		t.Fatalf("train/eval share %d/20 sequences", same)
	}
}

func TestDifferentSeedsDifferentPermutation(t *testing.T) {
	a, _ := New(DefaultConfig(1))
	b, _ := New(DefaultConfig(2))
	diff := false
	for i := 0; i < a.Cfg().NumKeys; i++ {
		if a.AnswerToken(i) != b.AnswerToken(i) {
			diff = true
			break
		}
	}
	if !diff {
		t.Fatal("permutations of different corpora coincide (possible but astronomically unlikely)")
	}
}

func TestChanceAccuracy(t *testing.T) {
	c, _ := New(testConfig())
	if got := c.ChanceAccuracy(); got != 1.0/12 {
		t.Fatalf("chance accuracy = %v", got)
	}
}

func TestKeysUniform(t *testing.T) {
	c, _ := New(testConfig())
	r := rng.New(99)
	counts := make([]int, c.Cfg().NumKeys)
	const n = 6000
	for i := 0; i < n; i++ {
		seq := c.Sample(r)
		ans := seq[len(seq)-1]
		for k := 0; k < c.Cfg().NumKeys; k++ {
			if c.AnswerToken(k) == ans {
				counts[k]++
			}
		}
	}
	want := n / c.Cfg().NumKeys
	for k, got := range counts {
		if got < want/2 || got > want*2 {
			t.Fatalf("key %d sampled %d times, want ≈%d", k, got, want)
		}
	}
}

func TestBatchProperty(t *testing.T) {
	f := func(seed uint64) bool {
		c, err := New(DefaultConfig(seed % 1000))
		if err != nil {
			return false
		}
		r := rng.New(seed)
		batch := c.Batch(r, 3)
		if len(batch) != 3 {
			return false
		}
		for _, seq := range batch {
			if len(seq) != c.Cfg().SeqLen || seq[0] != TokenBOS {
				return false
			}
		}
		return true
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 30}); err != nil {
		t.Fatal(err)
	}
}

func TestMarkovFillerNotUniform(t *testing.T) {
	// The filler chain must actually be a (learnable) Markov chain: the
	// conditional next-token distribution should deviate from uniform.
	c, _ := New(testConfig())
	r := rng.New(5)
	nf := c.numFiller()
	base := c.fillerBase()
	counts := make(map[int]map[int]int)
	for i := 0; i < 3000; i++ {
		seq := c.Sample(r)
		for j := 1; j < len(seq)-3; j++ {
			a, b := seq[j], seq[j+1]
			if a >= base && b >= base {
				if counts[a] == nil {
					counts[a] = map[int]int{}
				}
				counts[a][b]++
			}
		}
	}
	// pick the most-observed predecessor and check its distribution skew
	var bestA, bestN int
	for a, m := range counts {
		n := 0
		for _, v := range m {
			n += v
		}
		if n > bestN {
			bestA, bestN = a, n
		}
	}
	if bestN < 100 {
		t.Skip("not enough bigram data")
	}
	maxP := 0.0
	for _, v := range counts[bestA] {
		p := float64(v) / float64(bestN)
		if p > maxP {
			maxP = p
		}
	}
	if maxP < 1.5/float64(nf) {
		t.Fatalf("filler looks uniform: max conditional prob %v with %d filler tokens", maxP, nf)
	}
}
