#!/usr/bin/env bash
# serve_smoke.sh — end-to-end smoke of the HTTP inference service: start
# nora-serve on a random port against the committed zoo, wait for /healthz,
# issue a /v1/predict, check generation determinism (including a long and
# a short prompt decoded concurrently under chunked prefill), check /statz,
# then SIGINT and require a clean drain. CI runs this; it is also the
# quickest way to sanity-check serving locally.
set -euo pipefail

cd "$(dirname "$0")/.."

PORT=$(( (RANDOM % 20000) + 20000 ))
ADDR="127.0.0.1:${PORT}"
LOG="$(mktemp)"
trap 'kill "${SERVE_PID}" 2>/dev/null || true; rm -f "${LOG}"' EXIT

go build -o /tmp/nora-serve-smoke ./cmd/nora-serve
# -prefill-chunk 4 forces the long prompt below to prefill across several
# mixed steps, exercising the chunked path rather than a single pass.
/tmp/nora-serve-smoke -addr "${ADDR}" -models opt-c1 -prefill-chunk 4 >"${LOG}" 2>&1 &
SERVE_PID=$!

# Wait for the server to come up (zoo load + listener bind).
for i in $(seq 1 100); do
    if curl -sf "http://${ADDR}/healthz" >/dev/null 2>&1; then
        break
    fi
    if ! kill -0 "${SERVE_PID}" 2>/dev/null; then
        echo "serve_smoke: server died during startup:" >&2
        cat "${LOG}" >&2
        exit 1
    fi
    sleep 0.2
done

health=$(curl -sf "http://${ADDR}/healthz")
echo "healthz: ${health}"
echo "${health}" | grep -q '"status":"ok"'
echo "${health}" | grep -q 'opt-c1'

predict=$(curl -sf -X POST "http://${ADDR}/v1/predict" \
    -d '{"model":"opt-c1","mode":"nora","context":[1,2,3,4,5]}')
echo "predict: ${predict}"
echo "${predict}" | grep -q '"token":'

# Determinism across requests: same context, same answer.
predict2=$(curl -sf -X POST "http://${ADDR}/v1/predict" \
    -d '{"model":"opt-c1","mode":"nora","context":[1,2,3,4,5]}')
tok1=$(echo "${predict}" | sed 's/.*"token":\([0-9]*\).*/\1/')
tok2=$(echo "${predict2}" | sed 's/.*"token":\([0-9]*\).*/\1/')
if [ "${tok1}" != "${tok2}" ]; then
    echo "serve_smoke: nondeterministic predict: ${tok1} vs ${tok2}" >&2
    exit 1
fi

# Bad requests surface as client errors, not 5xx.
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://${ADDR}/v1/predict" -d '{"model":')
[ "${code}" = "400" ] || { echo "serve_smoke: malformed JSON gave ${code}, want 400" >&2; exit 1; }
code=$(curl -s -o /dev/null -w '%{http_code}' -X POST "http://${ADDR}/v1/predict" \
    -d '{"model":"nope","context":[1]}')
[ "${code}" = "404" ] || { echo "serve_smoke: unknown model gave ${code}, want 404" >&2; exit 1; }

# Streamed generation: a short greedy completion must yield NDJSON token
# events, a final done event, and non-empty token output.
gen=$(curl -sfN -X POST "http://${ADDR}/v1/generate" \
    -d '{"model":"opt-c1","mode":"nora","prompt":[1,2,3],"max_tokens":4}')
echo "generate:"
echo "${gen}"
echo "${gen}" | grep -q '"token":'
echo "${gen}" | grep -q '"done":true'
echo "${gen}" | grep -q '"finish_reason":"length"'
lines=$(echo "${gen}" | grep -c '"token":')
[ "${lines}" -ge 4 ] || { echo "serve_smoke: generate streamed ${lines} tokens, want 4" >&2; exit 1; }

# Generation determinism: same prompt, same greedy tokens (the final event
# carries wall-clock total_ms, so compare the token sequences only).
gen2=$(curl -sfN -X POST "http://${ADDR}/v1/generate" \
    -d '{"model":"opt-c1","mode":"nora","prompt":[1,2,3],"max_tokens":4}')
toks1=$(echo "${gen}" | grep -o '"token":[0-9]*' | tr '\n' ' ')
toks2=$(echo "${gen2}" | grep -o '"token":[0-9]*' | tr '\n' ' ')
if [ "${toks1}" != "${toks2}" ]; then
    echo "serve_smoke: nondeterministic generation: ${toks1} vs ${toks2}" >&2
    exit 1
fi

# Chunked-prefill determinism under concurrency: a long prompt (several
# -prefill-chunk 4 chunks) and a short one decoded at the same time must
# each produce the exact tokens they produce alone — batch composition and
# chunk boundaries must not leak into any sequence's noise stream.
LONG='[1,2,3,4,5,6,7,8,9,10,11,12,13,14,15,16,17,18,19,20,21,22,23,24]'
SHORT='[5,6,7]'
long_alone=$(curl -sfN -X POST "http://${ADDR}/v1/generate" \
    -d '{"model":"opt-c1","mode":"nora","prompt":'"${LONG}"',"max_tokens":6}')
short_alone=$(curl -sfN -X POST "http://${ADDR}/v1/generate" \
    -d '{"model":"opt-c1","mode":"nora","prompt":'"${SHORT}"',"max_tokens":6}')
long_out="$(mktemp)"; short_out="$(mktemp)"
curl -sfN -X POST "http://${ADDR}/v1/generate" \
    -d '{"model":"opt-c1","mode":"nora","prompt":'"${LONG}"',"max_tokens":6}' >"${long_out}" &
LONG_PID=$!
curl -sfN -X POST "http://${ADDR}/v1/generate" \
    -d '{"model":"opt-c1","mode":"nora","prompt":'"${SHORT}"',"max_tokens":6}' >"${short_out}" &
SHORT_PID=$!
wait "${LONG_PID}" "${SHORT_PID}"
long_toks_alone=$(echo "${long_alone}" | grep -o '"token":[0-9]*' | tr '\n' ' ')
short_toks_alone=$(echo "${short_alone}" | grep -o '"token":[0-9]*' | tr '\n' ' ')
long_toks_conc=$(grep -o '"token":[0-9]*' "${long_out}" | tr '\n' ' ')
short_toks_conc=$(grep -o '"token":[0-9]*' "${short_out}" | tr '\n' ' ')
rm -f "${long_out}" "${short_out}"
if [ "${long_toks_alone}" != "${long_toks_conc}" ]; then
    echo "serve_smoke: long prompt drifted under concurrency: '${long_toks_alone}' vs '${long_toks_conc}'" >&2
    exit 1
fi
if [ "${short_toks_alone}" != "${short_toks_conc}" ]; then
    echo "serve_smoke: short prompt drifted under concurrency: '${short_toks_alone}' vs '${short_toks_conc}'" >&2
    exit 1
fi
echo "concurrent long+short generation: deterministic"

statz=$(curl -sf "http://${ADDR}/statz")
echo "${statz}" | grep -q '"batch"'
echo "${statz}" | grep -q '"gen"'
echo "${statz}" | grep -q '"prefill_tokens"'
echo "${statz}" | grep -q '"kv_pages"'

# Clean shutdown: SIGINT must drain and exit 0.
kill -INT "${SERVE_PID}"
for i in $(seq 1 100); do
    kill -0 "${SERVE_PID}" 2>/dev/null || break
    sleep 0.2
done
if kill -0 "${SERVE_PID}" 2>/dev/null; then
    echo "serve_smoke: server did not exit after SIGINT" >&2
    exit 1
fi
wait "${SERVE_PID}" || { echo "serve_smoke: server exited non-zero" >&2; cat "${LOG}" >&2; exit 1; }
grep -q "drained" "${LOG}" || { echo "serve_smoke: no drain marker in log" >&2; cat "${LOG}" >&2; exit 1; }
echo "serve_smoke: OK"
