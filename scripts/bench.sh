#!/usr/bin/env bash
# Runs the analog read-path benchmark set (every benchmark matching
# MVM|Forward) -count times and distills the medians into a checked-in
# JSON artifact via scripts/benchsummary.
#
# Usage:
#   scripts/bench.sh                 # 5 runs, 1s each, writes BENCH_pr3.json
#   COUNT=3 BENCHTIME=2s OUT=/tmp/b.json scripts/bench.sh
set -euo pipefail
cd "$(dirname "$0")/.."

COUNT="${COUNT:-5}"
BENCHTIME="${BENCHTIME:-1s}"
OUT="${OUT:-BENCH_pr3.json}"

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench 'MVM|Forward' -benchtime "$BENCHTIME" -count "$COUNT" . | tee "$raw"
go run ./scripts/benchsummary -out "$OUT" <"$raw"
echo "wrote $OUT"
