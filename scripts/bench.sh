#!/usr/bin/env bash
# Runs the analog read-path and decode-throughput benchmark set (every
# benchmark matching MVM|Forward|Decode|Prefill) -count times and distills
# the medians into a checked-in JSON artifact via scripts/benchsummary. The
# Decode set records the continuous-batching acceptance numbers: aggregate
# tok/s of DecodeBatch8/DecodeBatch16 vs the sequential DecodeT1 baseline.
# The Prefill/DecodeMixed set records the chunked-prefill acceptance
# numbers: short-prompt p95 TTFT of DecodeMixedChunked64 vs
# DecodeMixedMonolithic at aggregate tok/s within 5%.
#
# Usage:
#   scripts/bench.sh                 # 5 runs, 1s each, writes BENCH_pr8.json
#   COUNT=3 BENCHTIME=2s OUT=/tmp/b.json scripts/bench.sh
set -euo pipefail
cd "$(dirname "$0")/.."

COUNT="${COUNT:-5}"
BENCHTIME="${BENCHTIME:-1s}"
OUT="${OUT:-BENCH_pr8.json}"

raw="$(mktemp)"
trap 'rm -f "$raw"' EXIT

go test -run '^$' -bench 'MVM|Forward|Decode|Prefill' -benchtime "$BENCHTIME" -count "$COUNT" . | tee "$raw"
go run ./scripts/benchsummary -out "$OUT" <"$raw"
echo "wrote $OUT"
