// Command benchsummary distills `go test -bench` output on stdin into a
// compact JSON artifact: per benchmark, the median ns/op, B/op and
// allocs/op across repeated -count runs (medians are robust to the odd
// noisy run on shared CI machines). scripts/bench.sh pipes into it to
// produce the checked-in BENCH_*.json files.
package main

import (
	"bufio"
	"encoding/json"
	"flag"
	"fmt"
	"os"
	"regexp"
	"sort"
	"strconv"
	"strings"
)

// benchLine matches one result line, e.g.
//
//	BenchmarkAnalogForward-8   1302   1565855 ns/op   9490 B/op   28 allocs/op
var benchLine = regexp.MustCompile(
	`^(Benchmark\S+?)(?:-\d+)?\s+(\d+)\s+([0-9.]+) ns/op(.*)$`)

// metric matches trailing "<value> <unit>" pairs after ns/op.
var metric = regexp.MustCompile(`([0-9.]+) (\S+)`)

type summary struct {
	Name     string   `json:"name"`
	Runs     int      `json:"runs"`
	NsOp     float64  `json:"ns_per_op_median"`
	BytesOp  *float64 `json:"bytes_per_op_median,omitempty"`
	AllocsOp *float64 `json:"allocs_per_op_median,omitempty"`
	// Custom b.ReportMetric units (e.g. "tok/s"), median per unit.
	Metrics map[string]float64 `json:"metrics_median,omitempty"`
}

type output struct {
	Command    string    `json:"command"`
	Goos       string    `json:"goos,omitempty"`
	Goarch     string    `json:"goarch,omitempty"`
	CPU        string    `json:"cpu,omitempty"`
	Benchmarks []summary `json:"benchmarks"`
}

func median(xs []float64) float64 {
	sort.Float64s(xs)
	n := len(xs)
	if n%2 == 1 {
		return xs[n/2]
	}
	return (xs[n/2-1] + xs[n/2]) / 2
}

func main() {
	out := flag.String("out", "", "output JSON path (default stdout)")
	flag.Parse()

	res := output{Command: "go test -run '^$' -bench 'MVM|Forward|Decode|Prefill' -count N"}
	ns := map[string][]float64{}
	bytes := map[string][]float64{}
	allocs := map[string][]float64{}
	extra := map[string]map[string][]float64{} // name → unit → values

	sc := bufio.NewScanner(os.Stdin)
	sc.Buffer(make([]byte, 1024*1024), 1024*1024)
	for sc.Scan() {
		line := sc.Text()
		switch {
		case strings.HasPrefix(line, "goos: "):
			res.Goos = strings.TrimPrefix(line, "goos: ")
		case strings.HasPrefix(line, "goarch: "):
			res.Goarch = strings.TrimPrefix(line, "goarch: ")
		case strings.HasPrefix(line, "cpu: "):
			res.CPU = strings.TrimPrefix(line, "cpu: ")
		}
		m := benchLine.FindStringSubmatch(line)
		if m == nil {
			continue
		}
		name := m[1]
		v, err := strconv.ParseFloat(m[3], 64)
		if err != nil {
			continue
		}
		ns[name] = append(ns[name], v)
		for _, mm := range metric.FindAllStringSubmatch(m[4], -1) {
			x, err := strconv.ParseFloat(mm[1], 64)
			if err != nil {
				continue
			}
			switch mm[2] {
			case "B/op":
				bytes[name] = append(bytes[name], x)
			case "allocs/op":
				allocs[name] = append(allocs[name], x)
			default:
				if extra[name] == nil {
					extra[name] = map[string][]float64{}
				}
				extra[name][mm[2]] = append(extra[name][mm[2]], x)
			}
		}
	}
	if err := sc.Err(); err != nil {
		fmt.Fprintln(os.Stderr, "benchsummary:", err)
		os.Exit(1)
	}
	if len(ns) == 0 {
		fmt.Fprintln(os.Stderr, "benchsummary: no benchmark lines on stdin")
		os.Exit(1)
	}

	names := make([]string, 0, len(ns))
	for name := range ns {
		names = append(names, name)
	}
	sort.Strings(names)
	for _, name := range names {
		s := summary{Name: name, Runs: len(ns[name]), NsOp: median(ns[name])}
		if xs := bytes[name]; len(xs) > 0 {
			v := median(xs)
			s.BytesOp = &v
		}
		if xs := allocs[name]; len(xs) > 0 {
			v := median(xs)
			s.AllocsOp = &v
		}
		for unit, xs := range extra[name] {
			if s.Metrics == nil {
				s.Metrics = map[string]float64{}
			}
			s.Metrics[unit] = median(xs)
		}
		res.Benchmarks = append(res.Benchmarks, s)
	}

	buf, err := json.MarshalIndent(res, "", "  ")
	if err != nil {
		fmt.Fprintln(os.Stderr, "benchsummary:", err)
		os.Exit(1)
	}
	buf = append(buf, '\n')
	if *out == "" {
		os.Stdout.Write(buf)
		return
	}
	if err := os.WriteFile(*out, buf, 0o644); err != nil {
		fmt.Fprintln(os.Stderr, "benchsummary:", err)
		os.Exit(1)
	}
}
