module nora

go 1.22
