// Package nora's root benchmark harness: one benchmark per table and
// figure of the paper's evaluation, each driving the same code path as the
// corresponding cmd/ regeneration tool on reduced workloads (tiny zoo
// models, small eval sets) so the full suite stays runnable in minutes.
// Run with -v to see the regenerated rows; run the cmd/ tools for the
// full-scale numbers recorded in EXPERIMENTS.md.
package nora

import (
	"fmt"
	"sort"
	"strings"
	"sync"
	"testing"
	"time"

	"nora/internal/analog"
	"nora/internal/core"
	"nora/internal/engine"
	"nora/internal/harness"
	"nora/internal/model"
	"nora/internal/nn"
	"nora/internal/rng"
	"nora/internal/stats"
	"nora/internal/tensor"
	"nora/internal/textgen"
)

// ---- shared fixtures ---------------------------------------------------

var (
	benchOnce sync.Once
	benchOPT  *harness.Workload
	benchLLs  []*harness.Workload // tiny llama + mistral
)

func benchWorkloads(b *testing.B) (*harness.Workload, []*harness.Workload) {
	b.Helper()
	benchOnce.Do(func() {
		mk := func(spec model.Spec) *harness.Workload {
			m, res, err := model.Train(spec)
			if err != nil {
				panic(err)
			}
			if res.EvalAcc < 0.8 {
				panic(fmt.Sprintf("%s undertrained: %.3f", spec.Key, res.EvalAcc))
			}
			corpus, err := spec.Corpus()
			if err != nil {
				panic(err)
			}
			return &harness.Workload{
				Spec:  spec,
				Model: m,
				Eval:  corpus.Split("eval", 40),
				Calib: corpus.Split("calibration", 12),
			}
		}
		benchOPT = mk(model.TinySpec())
		benchLLs = []*harness.Workload{mk(model.TinyLlamaSpec()), mk(model.TinyMistralSpec())}
	})
	return benchOPT, benchLLs
}

func logTable(b *testing.B, tbl *harness.Table) {
	b.Helper()
	var sb strings.Builder
	if err := tbl.WriteText(&sb); err != nil {
		b.Fatal(err)
	}
	b.Log("\n" + sb.String())
}

// ---- Table I: the modeled non-idealities --------------------------------

// BenchmarkTable1NoiseInventory exercises every modeled non-ideality once
// on the reference feature map, regenerating Table I's inventory together
// with the reference MSE each knob causes at its paper-preset value.
func BenchmarkTable1NoiseInventory(b *testing.B) {
	presets := map[harness.NoiseKind]float64{
		harness.KindADCQuant:  64,     // 7-bit ADC
		harness.KindDACQuant:  64,     // 7-bit DAC
		harness.KindOutNoise:  0.04,   // Table II out_noise
		harness.KindInNoise:   0.02,   // representative input noise
		harness.KindIRDrop:    1.0,    // Table II ir_drop
		harness.KindReadNoise: 0.0175, // Table II w_noise
		harness.KindSShape:    1.0,    // representative nonlinearity
		harness.KindProgNoise: 1.0,    // PCM-like programming noise
	}
	var rows *harness.Table
	for i := 0; i < b.N; i++ {
		rows = harness.NewTable("Table I — modeled non-idealities", "noise", "category", "preset", "ref-mse")
		for _, kind := range harness.AllNoiseKinds() {
			cat := "tile"
			if kind.IsIO() {
				cat = "IO"
			}
			mse := harness.MeasureMSE(harness.ConfigFor(kind, presets[kind]), 7)
			rows.Add(kind.String(), cat, presets[kind], mse)
		}
	}
	logTable(b, rows)
}

// ---- Table II: the aihwkit preset ---------------------------------------

// BenchmarkTable2PaperPresetMVM measures the full Table II noise stack on
// one analog MVM — the micro-operation every experiment is built from —
// and reports its reference-map MSE.
func BenchmarkTable2PaperPresetMVM(b *testing.B) {
	cfg := analog.PaperPreset()
	r := rng.New(3)
	w := tensor.New(256, 256)
	r.FillNormal(w.Data, 0, 1.0/16)
	lin := analog.NewAnalogLinear("bench", w, nil, nil, cfg, rng.New(4))
	x := tensor.New(4, 256)
	r.FillNormal(x.Data, 0, 1)
	out := tensor.New(4, 256)
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lin.ForwardInto(out, x)
	}
	b.StopTimer()
	b.ReportMetric(harness.MeasureMSE(cfg, 9), "ref-mse")
}

// BenchmarkMVMRowAllocs is a hard regression gate on the zero-allocation
// read path: it fails outright if the steady-state analog MVM allocates.
// The small tolerance absorbs rare sync.Pool refills after a GC.
func BenchmarkMVMRowAllocs(b *testing.B) {
	cfg := analog.PaperPreset()
	r := rng.New(3)
	w := tensor.New(256, 256)
	r.FillNormal(w.Data, 0, 1.0/16)
	lin := analog.NewAnalogLinear("bench", w, nil, nil, cfg, rng.New(4))
	x := tensor.New(4, 256)
	r.FillNormal(x.Data, 0, 1)
	out := tensor.New(4, 256)
	lin.ForwardInto(out, x) // prime the scratch pool
	avg := testing.AllocsPerRun(20, func() {
		lin.ForwardInto(out, x)
	})
	b.ReportMetric(avg, "allocs/op")
	if avg > 0.5 {
		b.Fatalf("analog read path allocates %.2f/op, want 0", avg)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		lin.ForwardInto(out, x)
	}
}

// ---- Fig. 3: sensitivity study ------------------------------------------

// BenchmarkFig3Sensitivity regenerates the sensitivity sweep (reduced: one
// tiny model, two MSE levels) — naive-analog accuracy drop per noise kind.
func BenchmarkFig3Sensitivity(b *testing.B) {
	w, _ := benchWorkloads(b)
	targets := []float64{0.0006, 0.00275}
	var points []harness.SensitivityPoint
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		points = harness.Sensitivity(engine.New(engine.Config{}), []*harness.Workload{w}, targets)
	}
	b.StopTimer()
	logTable(b, harness.SensitivityTable(points))
}

// ---- Fig. 4: activation vs weight distributions ---------------------------

// BenchmarkFig4DistributionKDE regenerates the Fig. 4 analysis: kernel
// density estimates and kurtosis of a layer's input activations vs its
// query weights, showing the long-tail activation distribution.
func BenchmarkFig4DistributionKDE(b *testing.B) {
	w, _ := benchWorkloads(b)
	var tbl *harness.Table
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		var acts []float32
		runner := nn.NewRunner(w.Model)
		runner.PreLinear = func(name string, x *tensor.Matrix) {
			if name == "layer1.attn.q" {
				acts = append(acts, x.Data...)
			}
		}
		for _, seq := range w.Eval[:8] {
			runner.Logits(seq[:len(seq)-1])
		}
		var wdata []float32
		for _, spec := range w.Model.Linears() {
			if spec.Name == "layer1.attn.q" {
				wdata = spec.W.Data
			}
		}
		kAct, kW := stats.Kurtosis(acts), stats.Kurtosis(wdata)
		kdeAct := stats.NewKDE(acts, 0)
		kdeW := stats.NewKDE(wdata, 0)
		tbl = harness.NewTable("Fig. 4 — layer1.attn.q distribution shape",
			"series", "kurtosis", "kde(0)", "kde(3σ-act)")
		sAct := stats.Summarize(acts)
		tbl.Add("activations", kAct, kdeAct.At(0), kdeAct.At(3*sAct.Std))
		tbl.Add("query weights", kW, kdeW.At(0), kdeW.At(3*sAct.Std))
	}
	b.StopTimer()
	logTable(b, tbl)
}

// ---- Fig. 5(a): OPT ladder accuracy --------------------------------------

// BenchmarkFig5aOPTAccuracy regenerates digital vs naive vs NORA accuracy
// for the OPT-class workload under the Table II preset.
func BenchmarkFig5aOPTAccuracy(b *testing.B) {
	w, _ := benchWorkloads(b)
	var rows []harness.AccuracyRow
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = harness.OverallAccuracy(engine.New(engine.Config{}), []*harness.Workload{w}, analog.PaperPreset())
	}
	b.StopTimer()
	logTable(b, harness.AccuracyTable("Fig. 5(a) — OPT-class (reduced)", rows))
	b.ReportMetric(rows[0].Digital-rows[0].NORA, "nora-loss")
	b.ReportMetric(rows[0].Digital-rows[0].Naive, "naive-loss")
}

// ---- Table III: LLaMA / Mistral accuracy ----------------------------------

// BenchmarkTable3LlamaMistral regenerates NORA vs digital FP for the
// LLaMA-class and Mistral-class workloads.
func BenchmarkTable3LlamaMistral(b *testing.B) {
	_, lls := benchWorkloads(b)
	var rows []harness.AccuracyRow
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = harness.OverallAccuracy(engine.New(engine.Config{}), lls, analog.PaperPreset())
	}
	b.StopTimer()
	logTable(b, harness.AccuracyTable("Table III — LLaMA/Mistral-class (reduced)", rows))
}

// ---- Fig. 5(b)(c): per-noise mitigation -----------------------------------

// BenchmarkFig5bcMitigation regenerates the matched-MSE mitigation study:
// naive vs NORA per noise kind at the 0.0015–0.0016 reference level.
func BenchmarkFig5bcMitigation(b *testing.B) {
	w, _ := benchWorkloads(b)
	var rows []harness.MitigationRow
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = harness.Mitigation(engine.New(engine.Config{}), []*harness.Workload{w}, harness.MitigationMSETarget)
	}
	b.StopTimer()
	logTable(b, harness.MitigationTable(rows))
}

// ---- Fig. 6: kurtosis and scale factors -----------------------------------

// BenchmarkFig6KurtosisAndScale regenerates the per-layer input/weight
// kurtosis and α·γ·g_max analysis for the query projections.
func BenchmarkFig6KurtosisAndScale(b *testing.B) {
	w, lls := benchWorkloads(b)
	ws := append([]*harness.Workload{w}, lls...)
	var rows []harness.Fig6Row
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = harness.DistributionAnalysis(engine.New(engine.Config{}), ws, "attn.q", analog.PaperPreset())
	}
	b.StopTimer()
	logTable(b, harness.Fig6Table(rows))
}

// ---- Extension: drift (paper §VII) ----------------------------------------

// BenchmarkExtDrift regenerates the 1-hour drift study.
func BenchmarkExtDrift(b *testing.B) {
	w, _ := benchWorkloads(b)
	var rows []harness.DriftRow
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = harness.DriftStudy(engine.New(engine.Config{}), []*harness.Workload{w}, 3600)
	}
	b.StopTimer()
	logTable(b, harness.DriftTable(rows))
}

// ---- Extension: λ ablation --------------------------------------------------

// BenchmarkExtLambdaAblation regenerates the migration-strength sweep.
func BenchmarkExtLambdaAblation(b *testing.B) {
	w, _ := benchWorkloads(b)
	lambdas := []float64{0.25, 0.5, 0.75, 1}
	var rows []harness.LambdaRow
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = harness.LambdaAblation(engine.New(engine.Config{}), []*harness.Workload{w}, lambdas)
	}
	b.StopTimer()
	logTable(b, harness.LambdaTable(rows))
}

// ---- Extension: task generalization (paper §VII: more benchmarks) ----------

// BenchmarkExtTaskGeneralization regenerates the recall-vs-majority task
// comparison on tiny models.
func BenchmarkExtTaskGeneralization(b *testing.B) {
	spec := model.TinyMajoritySpec()
	m, res, err := model.Train(spec)
	if err != nil {
		b.Fatal(err)
	}
	if res.EvalAcc < 0.8 {
		b.Fatalf("majority model undertrained: %.3f", res.EvalAcc)
	}
	corpus, err := spec.Corpus()
	if err != nil {
		b.Fatal(err)
	}
	maj := &harness.Workload{
		Spec:  spec,
		Model: m,
		Eval:  corpus.Split("eval", 40),
		Calib: corpus.Split("calibration", 12),
	}
	rec, _ := benchWorkloads(b)
	var rows []harness.AccuracyRow
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = harness.OverallAccuracy(engine.New(engine.Config{}), []*harness.Workload{rec, maj}, analog.PaperPreset())
	}
	b.StopTimer()
	logTable(b, harness.AccuracyTable("Ext. — task generalization (reduced)", rows))
}

// ---- Extension: multi-cell weight slicing (paper §VII) ----------------------

// BenchmarkExtWeightSlicing regenerates the multi-cell weight-precision
// study.
func BenchmarkExtWeightSlicing(b *testing.B) {
	w, _ := benchWorkloads(b)
	var rows []harness.SlicingRow
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = harness.SlicingStudy(engine.New(engine.Config{}), []*harness.Workload{w}, [][2]int{{2, 4}})
	}
	b.StopTimer()
	logTable(b, harness.SlicingTable(rows))
}

// ---- Extension: tile operating modes (paper §II variants) ------------------

// BenchmarkExtOperatingModes regenerates the voltage/bit-serial ×
// single-shot/write-verify mode matrix.
func BenchmarkExtOperatingModes(b *testing.B) {
	w, _ := benchWorkloads(b)
	var rows []harness.ModeRow
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = harness.ModeStudy(engine.New(engine.Config{}), []*harness.Workload{w})
	}
	b.StopTimer()
	logTable(b, harness.ModeTable(rows))
}

// ---- Extension: digital PTQ baselines (paper §VI related work) -------------

// BenchmarkExtBaselines regenerates the digital W8A8 / SmoothQuant vs
// analog naive / NORA comparison.
func BenchmarkExtBaselines(b *testing.B) {
	w, _ := benchWorkloads(b)
	var rows []harness.BaselineRow
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = harness.BaselineComparison(engine.New(engine.Config{}), []*harness.Workload{w}, analog.PaperPreset())
	}
	b.StopTimer()
	logTable(b, harness.BaselineTable(rows))
}

// ---- Extension: per-layer sensitivity (paper §VII future work) -------------

// BenchmarkExtPerLayer regenerates the one-layer-analog-at-a-time ablation.
func BenchmarkExtPerLayer(b *testing.B) {
	w, _ := benchWorkloads(b)
	var rows []harness.PerLayerRow
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = harness.PerLayerSensitivity(engine.New(engine.Config{}), []*harness.Workload{w}, analog.PaperPreset())
	}
	b.StopTimer()
	logTable(b, harness.PerLayerTable(rows))
}

// ---- Extension: calibration clipping quantile -------------------------------

// BenchmarkExtQuantileCalibration regenerates the calibration-quantile
// ablation.
func BenchmarkExtQuantileCalibration(b *testing.B) {
	w, _ := benchWorkloads(b)
	qs := []float64{0.9, 0.99, 1.0}
	var rows []harness.QuantileRow
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = harness.CalibrationAblation(engine.New(engine.Config{}), []*harness.Workload{w}, qs)
	}
	b.StopTimer()
	logTable(b, harness.QuantileTable(rows))
}

// ---- Extension: energy/latency estimate (paper §VII future work) -----------

// BenchmarkExtCostModel regenerates the hardware cost estimate.
func BenchmarkExtCostModel(b *testing.B) {
	w, _ := benchWorkloads(b)
	var rows []harness.CostRow
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		rows = harness.CostStudy(engine.New(engine.Config{}), []*harness.Workload{w}, analog.PaperPreset(), analog.DefaultCostModel())
	}
	b.StopTimer()
	logTable(b, harness.CostTable(rows))
}

// ---- Extension: hardware-aware training baseline (Fig. 1 Challenge 1) ------

// BenchmarkExtHWAvsNORA regenerates the HWA-fine-tuning vs NORA
// comparison (reduced step budget).
func BenchmarkExtHWAvsNORA(b *testing.B) {
	w, _ := benchWorkloads(b)
	var row harness.HWARow
	var err error
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		row, err = harness.HWAStudy(engine.New(engine.Config{}), w, 60, analog.PaperPreset())
		if err != nil {
			b.Fatal(err)
		}
	}
	b.StopTimer()
	logTable(b, harness.HWATable([]harness.HWARow{row}))
}

// ---- engine: deployment cache and parallel eval ----------------------------

// BenchmarkEngineDeployCacheMiss measures a cold deployment build through
// the engine (every iteration uses a distinct salt, so nothing is reused).
func BenchmarkEngineDeployCacheMiss(b *testing.B) {
	w, _ := benchWorkloads(b)
	eng := engine.New(engine.Config{})
	cfg := analog.PaperPreset()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Deploy(w.Request(core.DeployAnalogNaive, cfg, core.Options{}, fmt.Sprintf("miss%d", i)))
	}
	b.StopTimer()
	if s := eng.Stats(); s.DeployBuilds != int64(b.N) {
		b.Fatalf("expected %d builds, got %+v", b.N, s)
	}
}

// BenchmarkEngineDeployCacheHit measures the cached path: the same request
// served repeatedly from the LRU.
func BenchmarkEngineDeployCacheHit(b *testing.B) {
	w, _ := benchWorkloads(b)
	eng := engine.New(engine.Config{})
	cfg := analog.PaperPreset()
	req := w.Request(core.DeployAnalogNaive, cfg, core.Options{}, "")
	eng.Deploy(req) // warm
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		eng.Deploy(req)
	}
	b.StopTimer()
	if s := eng.Stats(); s.DeployHits != int64(b.N) {
		b.Fatalf("expected %d hits, got %+v", b.N, s)
	}
}

// BenchmarkEvalSerial measures the analog evaluation pass on one worker.
func BenchmarkEvalSerial(b *testing.B) {
	benchmarkEval(b, 1)
}

// BenchmarkEvalParallel measures the same pass on GOMAXPROCS workers; the
// result is bit-identical to the serial pass by the noise-scoping design.
func BenchmarkEvalParallel(b *testing.B) {
	benchmarkEval(b, 0)
}

func benchmarkEval(b *testing.B, workers int) {
	w, _ := benchWorkloads(b)
	runner := core.Deploy(w.Model, core.DeployAnalogNaive, nil, analog.PaperPreset(), 1, core.Options{})
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runner.Eval(w.Eval, workers)
	}
}

// ---- substrate micro-benchmarks -------------------------------------------

// BenchmarkDigitalForward measures the digital inference forward pass.
func BenchmarkDigitalForward(b *testing.B) {
	w, _ := benchWorkloads(b)
	runner := nn.NewRunner(w.Model)
	seq := w.Eval[0][:len(w.Eval[0])-1]
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runner.Logits(seq)
	}
}

// BenchmarkAnalogForward measures the analog inference forward pass under
// the full Table II noise stack, on the default sequence-batched read path
// (batch = analog.DefaultBatchRows).
func BenchmarkAnalogForward(b *testing.B) {
	w, _ := benchWorkloads(b)
	runner := core.Deploy(w.Model, core.DeployAnalogNaive, nil, analog.PaperPreset(), 1, core.Options{})
	seq := w.Eval[0][:len(w.Eval[0])-1]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runner.Logits(seq)
	}
}

// BenchmarkAnalogForwardRowLoop is BenchmarkAnalogForward pinned to the
// historical row-at-a-time read loop (batch = 1) — the before side of the
// batched-path speedup, bit-identical in output to the batched run.
func BenchmarkAnalogForwardRowLoop(b *testing.B) {
	w, _ := benchWorkloads(b)
	analog.SetDefaultBatchRows(1)
	defer analog.SetDefaultBatchRows(0)
	runner := core.Deploy(w.Model, core.DeployAnalogNaive, nil, analog.PaperPreset(), 1, core.Options{})
	seq := w.Eval[0][:len(w.Eval[0])-1]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runner.Logits(seq)
	}
}

// BenchmarkAnalogForwardStreamV2 runs the batched forward under the opt-in
// StreamV2 ziggurat noise stream — statistically equivalent Gaussians, a
// different (cheaper) draw sequence, separately fingerprinted.
func BenchmarkAnalogForwardStreamV2(b *testing.B) {
	w, _ := benchWorkloads(b)
	cfg := analog.PaperPreset()
	cfg.NoiseStream = rng.StreamV2
	runner := core.Deploy(w.Model, core.DeployAnalogNaive, nil, cfg, 1, core.Options{})
	seq := w.Eval[0][:len(w.Eval[0])-1]
	b.ReportAllocs()
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		runner.Logits(seq)
	}
}

// BenchmarkTrainingStep measures one training step (batch 4) of the tiny
// OPT-class model — the cost hardware-aware training would pay per step,
// which NORA avoids.
func BenchmarkTrainingStep(b *testing.B) {
	spec := model.TinySpec()
	corpus, err := textgen.New(textgen.DefaultConfig(1))
	if err != nil {
		b.Fatal(err)
	}
	m, err := nn.NewModel(spec.Cfg, rng.New(1))
	if err != nil {
		b.Fatal(err)
	}
	r := rng.New(2)
	batch := corpus.Batch(r, 4)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		m.LossOnBatch(batch)
		for _, p := range m.Params() {
			p.ZeroGrad()
		}
	}
}

// BenchmarkCalibration measures NORA's one-off calibration pass.
func BenchmarkCalibration(b *testing.B) {
	w, _ := benchWorkloads(b)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		core.Calibrate(w.Model, w.Calib)
	}
}

// ---- E22: continuous-batching decode throughput -------------------------

func bestToken(logits []float32) int {
	best := 0
	for i, v := range logits {
		if v > logits[best] {
			best = i
		}
	}
	return best
}

// decodeRunner deploys a mid-size untrained OPT-class model (d=256,
// 256×256 tiles — big enough that weight streaming, the cost batching
// amortizes, is visible next to the per-row digitize) under the naive
// analog stack with the v2 noise stream, once for all decode benchmarks.
// Weight quality is irrelevant to throughput, so training is skipped.
var (
	decodeOnce sync.Once
	decodeRun  *nn.Runner
)

func decodeBenchRunner(b *testing.B) *nn.Runner {
	b.Helper()
	decodeOnce.Do(func() {
		mcfg := nn.Config{Arch: nn.ArchOPT, Vocab: 256, DModel: 256, NHeads: 4, NLayers: 2, DFF: 1024, MaxSeq: 32}
		m, err := nn.NewModel(mcfg, rng.New(1))
		if err != nil {
			panic(err)
		}
		cfg := analog.PaperPreset()
		cfg.TileRows, cfg.TileCols = 256, 256
		cfg.NoiseStream = rng.StreamV2
		decodeRun = core.Deploy(m, core.DeployAnalogNaive, nil, cfg, 42, core.Options{})
	})
	return decodeRun
}

// benchmarkDecode measures aggregate greedy-decode throughput with `width`
// sequences kept in flight over one continuous-batching generator. Each
// iteration admits `width` short prompts and decodes 8 tokens per
// sequence; the reported tok/s metric is the acceptance number for the
// batched-vs-sequential decode comparison (DecodeBatch8/16 vs DecodeT1).
func benchmarkDecode(b *testing.B, width int) {
	bg := nn.NewBatchGenerator(decodeBenchRunner(b), width)
	const newTokens = 8
	prompt := []int{1, 2}
	ids := make([]int, width)
	toks := make([]int, width)
	var tokens int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		for s := 0; s < width; s++ {
			slot, logits, err := bg.Admit(prompt, fmt.Sprintf("bench/gen/%d", s))
			if err != nil {
				b.Fatal(err)
			}
			ids[s] = slot
			toks[s] = bestToken(logits) // row view dies at the next bg call
			tokens++
		}
		for t := 1; t < newTokens; t++ {
			logits, err := bg.Step(ids, toks)
			if err != nil {
				b.Fatal(err)
			}
			for s := 0; s < width; s++ {
				toks[s] = bestToken(logits.Row(s))
				tokens++
			}
		}
		for s := 0; s < width; s++ {
			bg.Release(ids[s])
		}
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(tokens)/secs, "tok/s")
	}
}

// BenchmarkDecodeT1 is the sequential baseline: one sequence per step.
func BenchmarkDecodeT1(b *testing.B) { benchmarkDecode(b, 1) }

// BenchmarkDecodeBatch8 decodes eight sequences per batched step; its
// tok/s must be ≥1.5× BenchmarkDecodeT1's.
func BenchmarkDecodeBatch8(b *testing.B) { benchmarkDecode(b, 8) }

// BenchmarkDecodeBatch16 decodes sixteen sequences per batched step — the
// occupancy a loaded server converges to with the default decode batch.
func BenchmarkDecodeBatch16(b *testing.B) { benchmarkDecode(b, 16) }

// ---- E23: chunked prefill under mixed prompt lengths ---------------------

// mixedRunner deploys the long-context variant of the decode bench model
// (same d=256 geometry, MaxSeq=520 so a 512-token prompt plus a short
// decode fits) for the prefill and mixed-workload benchmarks.
var (
	mixedOnce sync.Once
	mixedRun  *nn.Runner
)

func mixedBenchRunner(b *testing.B) *nn.Runner {
	b.Helper()
	mixedOnce.Do(func() {
		mcfg := nn.Config{Arch: nn.ArchOPT, Vocab: 256, DModel: 256, NHeads: 4, NLayers: 2, DFF: 1024, MaxSeq: 520}
		m, err := nn.NewModel(mcfg, rng.New(1))
		if err != nil {
			panic(err)
		}
		cfg := analog.PaperPreset()
		cfg.TileRows, cfg.TileCols = 256, 256
		cfg.NoiseStream = rng.StreamV2
		mixedRun = core.Deploy(m, core.DeployAnalogNaive, nil, cfg, 42, core.Options{})
	})
	return mixedRun
}

// benchmarkPrefill feeds a 512-token prompt through Begin+StepSegs in
// `chunk`-token pieces (chunk=512 is the monolithic single pass) and
// reports prompt tok/s — the per-token cost of chunking a prefill, i.e.
// the throughput side of the chunk-size tradeoff.
func benchmarkPrefill(b *testing.B, chunk int) {
	bg := nn.NewBatchGeneratorPaged(mixedBenchRunner(b), 1, 0, 0)
	const promptLen = 512
	prompt := make([]int, promptLen)
	for i := range prompt {
		prompt[i] = (i*7 + 3) % 256
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		slot, err := bg.Begin("bench/prefill", promptLen)
		if err != nil {
			b.Fatal(err)
		}
		for off := 0; off < promptLen; off += chunk {
			end := off + chunk
			if end > promptLen {
				end = promptLen
			}
			if _, err := bg.StepSegs([]nn.StepSeg{{Slot: slot, Tokens: prompt[off:end]}}); err != nil {
				b.Fatal(err)
			}
		}
		bg.Release(slot)
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(promptLen)*float64(b.N)/secs, "tok/s")
	}
}

// BenchmarkPrefillMonolithic512 prefills 512 tokens in one batched pass.
func BenchmarkPrefillMonolithic512(b *testing.B) { benchmarkPrefill(b, 512) }

// BenchmarkPrefillChunked64 prefills the same 512 tokens in eight 64-token
// chunks — the serving default. Its tok/s must stay within a few percent
// of the monolithic pass (weight streaming is already amortized at 64
// rows), which is what makes chunked admission nearly free.
func BenchmarkPrefillChunked64(b *testing.B) { benchmarkPrefill(b, 64) }

// mixSeq is one request of the simulated mixed-length serving workload.
type mixSeq struct {
	slot    int
	pending []int // unfed prompt suffix (chunked scheduler only)
	next    int
	emitted int
	short   bool
	born    time.Time
}

// benchmarkDecodeMixed replays the checked-in mixed-length workload —
// prompt lengths 512/16/16/128/16/16 arriving together, 8 new tokens each
// — through a scheduler shaped like internal/serve's. chunk <= 0 selects
// monolithic admission (PR7 behavior: each prompt prefills in one
// uninterrupted pass at admission, decode steps in between); chunk > 0
// selects chunked prefill with a shortest-remaining-first per-step token
// budget. Reported metrics are the acceptance numbers: aggregate tok/s
// (prompt + generated tokens) and the p95 TTFT of the short (16-token)
// prompts. Chunked must hold short-prompt p95 TTFT ≥2× below monolithic at
// aggregate tok/s within 5%.
func benchmarkDecodeMixed(b *testing.B, chunk int) {
	bg := nn.NewBatchGeneratorPaged(mixedBenchRunner(b), 8, 0, 0)
	const newTokens = 8
	lengths := []int{512, 16, 16, 128, 16, 16}
	prompts := make([][]int, len(lengths))
	var workTokens int64 // prompt + generated tokens per iteration
	for i, n := range lengths {
		p := make([]int, n)
		for j := range p {
			p[j] = (j*11 + i*17 + 5) % 256
		}
		prompts[i] = p
		workTokens += int64(n + newTokens)
	}
	var shortTTFT []time.Duration
	var tokens int64
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		born := time.Now() // all requests arrive together, FIFO: long first
		queue := prompts
		var live []*mixSeq
		for len(queue) > 0 || len(live) > 0 {
			// Admit at the step boundary while slots last (FIFO).
			for len(queue) > 0 && bg.Free() > 0 {
				p := queue[0]
				queue = queue[1:]
				seq := &mixSeq{short: len(p) == 16, born: born}
				if chunk <= 0 {
					// Monolithic: the whole prompt in one blocking pass.
					slot, logits, err := bg.AdmitBudget(p, "bench/mix", len(p)+newTokens-1)
					if err != nil {
						b.Fatal(err)
					}
					seq.slot, seq.next, seq.emitted = slot, bestToken(logits), 1
					if seq.short {
						shortTTFT = append(shortTTFT, time.Since(seq.born))
					}
					tokens++
				} else {
					slot, err := bg.Begin("bench/mix", len(p)+newTokens-1)
					if err != nil {
						b.Fatal(err)
					}
					seq.slot, seq.pending = slot, p
				}
				live = append(live, seq)
			}
			// One mixed step: decode rows plus (chunked only) prefill chunks
			// under a shortest-remaining-first budget.
			alloc := make([]int, len(live))
			budget := chunk
			order := make([]int, 0, len(live))
			for idx, seq := range live {
				if len(seq.pending) > 0 {
					order = append(order, idx)
				}
			}
			sort.SliceStable(order, func(a, c int) bool {
				return len(live[order[a]].pending) < len(live[order[c]].pending)
			})
			for _, idx := range order {
				if budget <= 0 {
					break
				}
				n := len(live[idx].pending)
				if n > budget {
					n = budget
				}
				alloc[idx] = n
				budget -= n
			}
			var segs []nn.StepSeg
			var rows []*mixSeq
			for idx, seq := range live {
				if len(seq.pending) == 0 {
					segs = append(segs, nn.StepSeg{Slot: seq.slot, Tokens: []int{seq.next}})
					rows = append(rows, seq)
				} else if alloc[idx] > 0 {
					segs = append(segs, nn.StepSeg{Slot: seq.slot, Tokens: seq.pending[:alloc[idx]]})
					rows = append(rows, seq)
				}
			}
			if len(segs) == 0 {
				break // unreachable: live is empty or a seg was built
			}
			logits, err := bg.StepSegs(segs)
			if err != nil {
				b.Fatal(err)
			}
			out := live[:0]
			row := 0
			for _, seq := range live {
				if row < len(rows) && rows[row] == seq {
					lr := logits.Row(row)
					if len(seq.pending) > 0 {
						seq.pending = seq.pending[len(segs[row].Tokens):]
						row++
						if len(seq.pending) > 0 {
							out = append(out, seq)
							continue
						}
						if seq.short {
							shortTTFT = append(shortTTFT, time.Since(seq.born))
						}
					} else {
						row++
					}
					seq.next = bestToken(lr)
					seq.emitted++
					tokens++
					if seq.emitted >= newTokens {
						bg.Release(seq.slot)
						continue
					}
				}
				out = append(out, seq)
			}
			live = out
		}
	}
	b.StopTimer()
	if secs := b.Elapsed().Seconds(); secs > 0 {
		b.ReportMetric(float64(workTokens)*float64(b.N)/secs, "tok/s")
	}
	if len(shortTTFT) > 0 {
		sort.Slice(shortTTFT, func(i, j int) bool { return shortTTFT[i] < shortTTFT[j] })
		p95 := shortTTFT[int(0.95*float64(len(shortTTFT)-1))]
		b.ReportMetric(float64(p95)/1e6, "ttft-p95-ms")
	}
}

// BenchmarkDecodeMixedMonolithic is the PR7 baseline: prompts prefill in
// one uninterrupted pass each, so every short prompt behind the 512-token
// one waits out its entire prefill.
func BenchmarkDecodeMixedMonolithic(b *testing.B) { benchmarkDecodeMixed(b, 0) }

// BenchmarkDecodeMixedChunked64 runs the same workload with 64-token
// chunked prefill: short prompts overtake the long prefill within one
// budget round and stream their first token ~an order of magnitude sooner.
func BenchmarkDecodeMixedChunked64(b *testing.B) { benchmarkDecodeMixed(b, 64) }
