// Migration-strength ablation: sweep NORA's λ — the knob dividing the
// non-ideality burden between activations (λ→0) and weights (λ→1) — under
// the full Table II noise stack, and report both accuracy and the mean
// α·γ scale factor. The balanced λ = 0.5 minimizes α·γ and is the
// deployment default; this is one of the ablations the paper's §VII lists
// as future work.
//
// Run from the repository root:
//
//	go run ./examples/smoothquant-lambda
package main

import (
	"fmt"
	"log"
	"os"

	"nora/internal/analog"
	"nora/internal/core"
	"nora/internal/harness"
	"nora/internal/model"
	"nora/internal/nn"
	"nora/internal/rng"
	"nora/internal/tensor"
)

func main() {
	spec := model.TinySpec()
	fmt.Println("training", spec.Display, "...")
	m, res, err := model.Train(spec)
	if err != nil {
		log.Fatal(err)
	}
	corpus, err := spec.Corpus()
	if err != nil {
		log.Fatal(err)
	}
	evalSet := corpus.Split("eval", 100)
	cal := core.Calibrate(m, corpus.Split("calibration", 16))
	cfg := analog.PaperPreset()

	// Capture one layer's real input activations for the α·γ readout.
	probeLayer := "layer0.attn.q"
	var probe *tensor.Matrix
	r := nn.NewRunner(m)
	r.PreLinear = func(name string, x *tensor.Matrix) {
		if name == probeLayer && probe == nil {
			probe = x.Clone()
		}
	}
	r.Logits(evalSet[0][:len(evalSet[0])-1])

	var probeSpec nn.LinearSpec
	for _, s := range m.Linears() {
		if s.Name == probeLayer {
			probeSpec = s
		}
	}

	tbl := harness.NewTable(
		fmt.Sprintf("NORA λ ablation — %s, Table II noise (digital acc %.3f)", spec.Display, res.EvalAcc),
		"lambda", "accuracy", "alphagamma(layer0.attn.q)")
	for _, lambda := range []float64{0.1, 0.25, 0.5, 0.75, 0.9, 1.0} {
		runner := core.Deploy(m, core.DeployAnalogNORA, cal, cfg, 11, core.Options{Lambda: lambda})
		acc := runner.EvalAccuracy(evalSet)
		s := core.ComputeS(probeSpec.W, cal.InputMax[probeLayer], lambda)
		lin := analog.NewAnalogLinear(probeLayer, probeSpec.W, probeSpec.B, s, cfg, rng.New(uint64(1000+int(lambda*100))))
		tbl.Add(lambda, acc, lin.AlphaGammaMean(probe))
	}
	// naive reference row
	naive := core.Deploy(m, core.DeployAnalogNaive, nil, cfg, 11, core.Options{})
	naiveLin := analog.NewAnalogLinear(probeLayer, probeSpec.W, probeSpec.B, nil, cfg, rng.New(999))
	tbl.Add("naive", naive.EvalAccuracy(evalSet), naiveLin.AlphaGammaMean(probe))

	if err := tbl.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
