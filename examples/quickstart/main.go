// Quickstart: deploy a transformer's linear layers on simulated analog CIM
// tiles, with and without NORA rescaling, and compare last-word-prediction
// accuracy against the digital full-precision baseline.
//
// This walks the full public API surface in ~60 lines:
//
//  1. obtain a model (train a tiny one here; the zoo caches bigger ones),
//  2. calibrate NORA's per-channel statistics on a small calibration set,
//  3. deploy digital / naive-analog / NORA-analog and evaluate.
//
// Run from the repository root:
//
//	go run ./examples/quickstart
package main

import (
	"fmt"
	"log"
	"os"

	"nora/internal/analog"
	"nora/internal/core"
	"nora/internal/harness"
	"nora/internal/model"
)

func main() {
	// 1. A small OPT-class model with planted activation outliers,
	//    trained on the synthetic Lambada-style task. With a cached zoo
	//    (go run ./cmd/nora-train) use model.LoadOrTrain instead.
	spec := model.TinySpec()
	fmt.Printf("training %s (%d-ish seconds)...\n", spec.Display, spec.Train.Steps/50)
	m, res, err := model.Train(spec)
	if err != nil {
		log.Fatal(err)
	}
	fmt.Printf("digital accuracy after training: %.3f (chance %.3f)\n\n", res.EvalAcc, res.EvalChance)

	corpus, err := spec.Corpus()
	if err != nil {
		log.Fatal(err)
	}
	evalSet := corpus.Split("eval", 100)
	calibSet := corpus.Split("calibration", 16) // the "Pile" stand-in

	// 2. Offline calibration: per-channel max|x_k| for every linear layer.
	cal := core.Calibrate(m, calibSet)

	// 3. Deploy under the paper's Table II analog settings.
	cfg := analog.PaperPreset()

	digital := core.Deploy(m, core.DeployDigital, nil, cfg, 1, core.Options{})
	naive := core.Deploy(m, core.DeployAnalogNaive, nil, cfg, 1, core.Options{})
	nora := core.Deploy(m, core.DeployAnalogNORA, cal, cfg, 1, core.Options{})

	tbl := harness.NewTable("Quickstart — "+spec.Display+" on analog CIM (Table II preset)",
		"deployment", "lambada-style accuracy")
	tbl.Add(core.DeployDigital.String(), digital.EvalAccuracy(evalSet))
	tbl.Add(core.DeployAnalogNaive.String(), naive.EvalAccuracy(evalSet))
	tbl.Add(core.DeployAnalogNORA.String(), nora.EvalAccuracy(evalSet))
	if err := tbl.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}
}
