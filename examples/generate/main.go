// Autoregressive generation on analog hardware: drive the KV-cached
// incremental decoder through the analog tile deployment and check whether
// the model still *generates* the right answer token after the query — the
// generation-side view of the Lambada evaluation.
//
// Run from the repository root:
//
//	go run ./examples/generate
package main

import (
	"fmt"
	"log"
	"os"

	"nora/internal/analog"
	"nora/internal/core"
	"nora/internal/harness"
	"nora/internal/model"
	"nora/internal/nn"
)

func main() {
	spec := model.TinySpec()
	fmt.Println("training", spec.Display, "...")
	m, res, err := model.Train(spec)
	if err != nil {
		log.Fatal(err)
	}
	corpus, err := spec.Corpus()
	if err != nil {
		log.Fatal(err)
	}
	eval := corpus.Split("eval", 80)
	cal := core.Calibrate(m, corpus.Split("calibration", 16))
	cfg := analog.PaperPreset()

	deployments := []struct {
		name   string
		runner *nn.Runner
	}{
		{"digital-fp", core.Deploy(m, core.DeployDigital, nil, cfg, 1, core.Options{})},
		{"analog-naive", core.Deploy(m, core.DeployAnalogNaive, nil, cfg, 1, core.Options{})},
		{"analog-nora", core.Deploy(m, core.DeployAnalogNORA, cal, cfg, 1, core.Options{})},
	}

	tbl := harness.NewTable(
		fmt.Sprintf("Greedy generation of the answer token — %s (trained to %.3f)", spec.Display, res.EvalAcc),
		"deployment", "answers-correct")
	for _, d := range deployments {
		gen := nn.NewGenerator(d.runner)
		correct := 0
		for _, seq := range eval {
			gen.Reset()
			prompt := seq[:len(seq)-1] // up to and including the QUERY token
			out := gen.Greedy(prompt, 1)
			if len(out) == 1 && out[0] == seq[len(seq)-1] {
				correct++
			}
		}
		tbl.Add(d.name, float64(correct)/float64(len(eval)))
	}
	if err := tbl.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}

	// Show one concrete generation per deployment.
	sample := eval[0]
	fmt.Printf("\nprompt (token ids): %v\nexpected answer:    %d\n", sample[:len(sample)-1], sample[len(sample)-1])
	for _, d := range deployments {
		gen := nn.NewGenerator(d.runner)
		out := gen.Greedy(sample[:len(sample)-1], 1)
		fmt.Printf("%-13s generates: %d\n", d.name, out[0])
	}
}
