// Sensitivity scan: sweep one analog non-ideality across MSE-matched
// levels and watch the accuracy respond — a single-noise slice of the
// paper's Fig. 3, driven through the public harness API.
//
// Run from the repository root (flags: -noise out-noise|adc-quant|...):
//
//	go run ./examples/sensitivity -noise adc-quant
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"nora/internal/core"
	"nora/internal/harness"
	"nora/internal/model"
)

func main() {
	noiseName := flag.String("noise", "out-noise", "which non-ideality to sweep")
	flag.Parse()

	var kind harness.NoiseKind
	found := false
	for _, k := range harness.AllNoiseKinds() {
		if k.String() == *noiseName {
			kind, found = k, true
			break
		}
	}
	if !found {
		log.Fatalf("unknown noise %q; one of: %v", *noiseName, harness.AllNoiseKinds())
	}

	// Train (or reuse) the tiny outlier-heavy model.
	spec := model.TinySpec()
	fmt.Println("training", spec.Display, "...")
	m, res, err := model.Train(spec)
	if err != nil {
		log.Fatal(err)
	}
	corpus, err := spec.Corpus()
	if err != nil {
		log.Fatal(err)
	}
	evalSet := corpus.Split("eval", 100)

	tbl := harness.NewTable(
		fmt.Sprintf("Sensitivity of %s to %s (digital accuracy %.3f)", spec.Display, kind, res.EvalAcc),
		"target-mse", "achieved-mse", "param", "accuracy", "drop")
	for _, target := range harness.PaperMSETargets() {
		lvl := harness.CalibrateToMSE(kind, target)
		cfg := harness.ConfigFor(kind, lvl.Param)
		runner := core.Deploy(m, core.DeployAnalogNaive, nil, cfg, 7, core.Options{})
		acc := runner.EvalAccuracy(evalSet)
		tbl.Add(lvl.TargetMSE, lvl.MSE, lvl.Param, acc, res.EvalAcc-acc)
	}
	if err := tbl.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}
	if kind.IsIO() {
		fmt.Println("\n(I/O non-ideality: expect large drops — the paper's sensitive class.)")
	} else {
		fmt.Println("\n(Tile non-ideality: expect near-zero drops — the paper's resilient class.)")
	}
}
