// Drift study: program a model onto PCM tiles, let the conductances drift
// (the paper's §VII limitation experiment uses 1 hour), and measure how
// naive and NORA deployments degrade — with and without global drift
// compensation.
//
// Run from the repository root:
//
//	go run ./examples/drift [-hours 1]
package main

import (
	"flag"
	"fmt"
	"log"
	"os"

	"nora/internal/analog"
	"nora/internal/core"
	"nora/internal/harness"
	"nora/internal/model"
)

func main() {
	hours := flag.Float64("hours", 1, "drift time in hours")
	flag.Parse()

	spec := model.TinySpec()
	fmt.Println("training", spec.Display, "...")
	m, res, err := model.Train(spec)
	if err != nil {
		log.Fatal(err)
	}
	corpus, err := spec.Corpus()
	if err != nil {
		log.Fatal(err)
	}
	evalSet := corpus.Split("eval", 100)
	cal := core.Calibrate(m, corpus.Split("calibration", 16))

	tbl := harness.NewTable(
		fmt.Sprintf("Drift study — %s after %.2g h (digital acc %.3f)", spec.Display, *hours, res.EvalAcc),
		"drift", "compensation", "naive", "nora")
	for _, t := range []float64{0, *hours * 3600} {
		for _, comp := range []bool{false, true} {
			if t == 0 && comp {
				continue // compensation is a no-op at t=0
			}
			cfg := analog.PaperPreset()
			cfg.DriftT = t
			cfg.DriftCompensation = comp
			naive := core.Deploy(m, core.DeployAnalogNaive, nil, cfg, 5, core.Options{})
			nora := core.Deploy(m, core.DeployAnalogNORA, cal, cfg, 5, core.Options{})
			tbl.Add(fmt.Sprintf("%.0fs", t), comp, naive.EvalAccuracy(evalSet), nora.EvalAccuracy(evalSet))
		}
	}
	if err := tbl.WriteText(os.Stdout); err != nil {
		log.Fatal(err)
	}
	fmt.Println("\n(The paper reports NORA becoming less effective after 1 h of drift in")
	fmt.Println(" some models; global drift compensation recovers most of the loss.)")
}
