// Command nora-fleet runs the multi-chip fleet study (E24): served
// accuracy and virtual-time queueing delay versus fleet size and worst-chip
// stuck-at fault rate, comparing round-robin routing against the
// health-aware router (internal/fleet). Chips form a linear fault gradient
// from fresh to the worst rate; every chip realizes its own content-keyed
// fault draw, so results are bit-identical across runs and machines.
//
// With -scenario the command also scripts a fleet failure drill against the
// largest configured fleet and prints the per-chip outcome:
//
//	failure  fail the busiest chip mid-traffic, show the routing shift to
//	         the survivors, restore it
//	rolling  re-program every chip in sequence (fresh fault draws), the
//	         router steering traffic around the chip being rewritten
//
// Usage:
//
//	nora-fleet [-modeldir testdata/models] [-eval 150] [-models opt-c3]
//	           [-sizes 1,2,4,8] [-rates 0,0.02,0.08] [-requests 2000]
//	           [-gap 0.6] [-scenario failure|rolling] [-csv out.csv] [-quick]
package main

import (
	"context"
	"flag"
	"fmt"
	"os"
	"sort"
	"strconv"
	"strings"

	"nora/internal/analog"
	"nora/internal/cli"
	"nora/internal/core"
	"nora/internal/engine"
	"nora/internal/fleet"
	"nora/internal/harness"
	"nora/internal/prof"
)

func main() {
	var opt cli.Options
	opt.RegisterFlags(flag.CommandLine)
	csvPath := flag.String("csv", "", "also write the sweep as CSV")
	models := flag.String("models", "", "comma-separated zoo keys (default: all)")
	sizes := flag.String("sizes", "", "comma-separated fleet sizes (default: study ladder)")
	rates := flag.String("rates", "", "comma-separated worst-chip stuck-at rates (default: study ladder)")
	requests := flag.Int("requests", harness.DefaultFleetRequests, "virtual requests per routing simulation")
	gap := flag.Float64("gap", harness.DefaultFleetGap, "virtual arrival gap between requests")
	scenario := flag.String("scenario", "", "also run a failure drill: failure or rolling")
	flag.Parse()
	if err := run(&opt, *csvPath, *models, *sizes, *rates, *requests, *gap, *scenario); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(opt *cli.Options, csvPath, models, sizes, rates string, requests int, gap float64, scenario string) error {
	if err := opt.Finish(); err != nil {
		return err
	}

	stopProf := prof.Start()
	defer stopProf()

	sizeLadder := harness.DefaultFleetSizes()
	rateLadder := harness.DefaultFleetRates()
	if opt.Quick {
		sizeLadder = []int{1, 3}
		rateLadder = []float64{0, 0.05}
		requests = 300
		if models == "" {
			models = "opt-c3"
		}
		opt.QuickEval(30)
	}
	var err error
	if sizes != "" {
		if sizeLadder, err = parseInts(sizes); err != nil {
			return fmt.Errorf("-sizes: %w", err)
		}
	}
	if rates != "" {
		if rateLadder, err = cli.ParseFloats(rates); err != nil {
			return fmt.Errorf("-rates: %w", err)
		}
	}

	ws, err := opt.LoadModels(models)
	if err != nil {
		return err
	}

	eng := opt.NewEngine()
	base := analog.PaperPreset()

	rows := harness.FleetSweep(eng, ws, base, sizeLadder, rateLadder, requests, gap)
	tbl := harness.FleetTable(rows)
	if err := tbl.WriteText(os.Stdout); err != nil {
		return err
	}
	if csvPath != "" {
		if err := tbl.WriteCSVFile(csvPath); err != nil {
			return err
		}
	}

	if scenario != "" {
		size := sizeLadder[len(sizeLadder)-1]
		rate := rateLadder[len(rateLadder)-1]
		if err := runScenario(eng, ws[0], base, scenario, size, rate); err != nil {
			return err
		}
	}
	fmt.Fprintln(os.Stderr, eng.Stats())
	return nil
}

// chipName renders a chip ID for the drill output ("" is the implicit
// fresh chip).
func chipName(id string) string {
	if id == "" {
		return "chip0"
	}
	return id
}

// fire routes n synchronous requests through the group — the same
// Acquire/release path nora-serve requests take — and tallies which chips
// carried them.
func fire(grp *fleet.Group, n int) (map[string]int, error) {
	served := make(map[string]int)
	for i := 0; i < n; i++ {
		rep, release, err := grp.Acquire()
		if err != nil {
			return served, err
		}
		for _, c := range rep.Chips() {
			served[chipName(c.Spec.ID)]++
		}
		release()
	}
	return served, nil
}

// runScenario scripts one failure drill on a gradient fleet and prints the
// per-chip outcome.
func runScenario(eng *engine.Engine, w *harness.Workload, base analog.Config, scenario string, size int, rate float64) error {
	flt := fleet.New(eng, fleet.Config{Chips: fleet.GradientChips(size, rate), Policy: fleet.HealthAware})
	grp := flt.Deploy(w.Request(core.DeployAnalogNORA, base, core.Options{}, ""))
	fmt.Printf("\nscenario %s: %s, %d chips, worst-chip rate %g, policy %s\n",
		scenario, w.Spec.Display, size, rate, flt.Config().Policy)

	switch scenario {
	case "failure":
		before, err := fire(grp, 24)
		if err != nil {
			return err
		}
		target, busiest := "", -1
		for id, n := range before {
			if n > busiest {
				target, busiest = id, n
			}
		}
		targetID := target
		if targetID == "chip0" {
			targetID = "" // the implicit chip's real ID
		}
		fmt.Printf("  baseline traffic: %v\n", fmtServed(before))
		if err := flt.Fail(targetID); err != nil {
			return err
		}
		after, ferr := fire(grp, 24)
		fmt.Printf("  after failing %s: %v\n", target, fmtServed(after))
		if ferr != nil {
			fmt.Printf("  (fleet exhausted: %v)\n", ferr)
		}
		if err := flt.Restore(targetID); err != nil {
			return err
		}
		restored, err := fire(grp, 24)
		if err != nil {
			return err
		}
		fmt.Printf("  after restore: %v\n", fmtServed(restored))
	case "rolling":
		fmt.Printf("  health before: %s\n", fmtHealth(grp))
		if err := flt.RollingReprogram(context.Background()); err != nil {
			return err
		}
		fmt.Printf("  health after:  %s\n", fmtHealth(grp))
		for _, c := range flt.Chips() {
			fmt.Printf("  %s: state %s, reprogrammed %d time(s)\n",
				chipName(c.Spec.ID), c.State(), c.Reprograms())
		}
	default:
		return fmt.Errorf("unknown -scenario %q (want failure or rolling)", scenario)
	}
	return nil
}

// fmtServed renders a traffic tally in stable chip order.
func fmtServed(served map[string]int) string {
	ids := make([]string, 0, len(served))
	for id := range served {
		ids = append(ids, id)
	}
	sort.Strings(ids)
	parts := make([]string, len(ids))
	for i, id := range ids {
		parts[i] = fmt.Sprintf("%s=%d", id, served[id])
	}
	return strings.Join(parts, " ")
}

// fmtHealth renders each replica's health penalty.
func fmtHealth(grp *fleet.Group) string {
	var parts []string
	for _, rep := range grp.Replicas() {
		parts = append(parts, fmt.Sprintf("r%d=%.4f", rep.Index, rep.HealthScore()))
	}
	return strings.Join(parts, " ")
}

// parseInts parses a comma-separated int list (the -sizes flag).
func parseInts(list string) ([]int, error) {
	var out []int
	for _, s := range strings.Split(list, ",") {
		v, err := strconv.Atoi(strings.TrimSpace(s))
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
