// Command nora-pareto explores the hardware design space (E21): a tile
// configuration sweep — ADC bits × tile size × bit-slicing scheme — over
// the model zoo with the cost engine enabled, emitting the accuracy-vs-
// energy Pareto front as a table, CSV, and terminal chart.
//
// Usage:
//
//	nora-pareto [-modeldir testdata/models] [-eval 150]
//	            [-models opt-c3,mistral-c] [-bits 5,6,7,8]
//	            [-tiles 128,256,512] [-slices] [-costmodel cost.json]
//	            [-csv out.csv] [-front-only] [-quick]
package main

import (
	"flag"
	"fmt"
	"os"

	"nora/internal/analog"
	"nora/internal/cli"
	"nora/internal/harness"
	"nora/internal/prof"
)

func main() {
	var opt cli.Options
	opt.RegisterFlags(flag.CommandLine)
	csvPath := flag.String("csv", "", "also write results as CSV")
	models := flag.String("models", "", "comma-separated zoo keys (default: all)")
	bits := flag.String("bits", "", "comma-separated ADC bit widths (default: study ladder)")
	tiles := flag.String("tiles", "", "comma-separated square tile sizes (default: study ladder)")
	slices := flag.Bool("slices", true, "include the 2x4-bit multi-cell slicing scheme alongside continuous")
	frontOnly := flag.Bool("front-only", false, "print only rows on the Pareto front")
	noChart := flag.Bool("no-chart", false, "suppress the terminal chart")
	flag.Parse()
	if err := run(&opt, *csvPath, *models, *bits, *tiles, *slices, *frontOnly, *noChart); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(opt *cli.Options, csvPath, models, bits, tiles string, slices, frontOnly, noChart bool) error {
	if err := opt.Finish(); err != nil {
		return err
	}

	stopProf := prof.Start()
	defer stopProf()

	bitLadder := harness.DefaultParetoBits()
	tileLadder := harness.DefaultParetoTiles()
	schemes := harness.DefaultParetoSchemes()
	if !slices {
		schemes = harness.QuickParetoSchemes()
	}
	if opt.Quick {
		bitLadder = harness.QuickParetoBits()
		tileLadder = harness.QuickParetoTiles()
		schemes = harness.QuickParetoSchemes()
		if models == "" {
			models = "opt-c3"
		}
		opt.QuickEval(30)
	}
	if bits != "" {
		is, err := cli.ParseInts(bits)
		if err != nil {
			return fmt.Errorf("-bits: %w", err)
		}
		bitLadder = is
	}
	if tiles != "" {
		is, err := cli.ParseInts(tiles)
		if err != nil {
			return fmt.Errorf("-tiles: %w", err)
		}
		tileLadder = is
	}

	ws, err := opt.LoadModels(models)
	if err != nil {
		return err
	}

	eng := opt.NewEngine()
	tcs := harness.ParetoGrid(bitLadder, tileLadder, schemes)
	rows := harness.ParetoSweep(eng, ws, analog.PaperPreset(), tcs, opt.CostModel())

	shown := rows
	if frontOnly {
		shown = shown[:0:0]
		for _, r := range rows {
			if r.Front {
				shown = append(shown, r)
			}
		}
	}
	tbl := harness.ParetoTable(shown)
	if err := tbl.WriteText(os.Stdout); err != nil {
		return err
	}
	if !noChart {
		fmt.Println()
		if err := harness.ParetoChart(rows).Render(os.Stdout); err != nil {
			return err
		}
	}
	if csvPath != "" {
		// The CSV always carries the full sweep (front membership is a
		// column), so downstream plotting never loses the dominated points.
		if err := harness.ParetoTable(rows).WriteCSVFile(csvPath); err != nil {
			return err
		}
	}
	fmt.Fprintln(os.Stderr, eng.Stats())
	return nil
}
