// Command nora-mitigation regenerates the paper's Fig. 5(b)(c): each
// non-ideality is scaled to the same matched reference MSE (0.0015–0.0016)
// and applied alone; the naive analog and NORA deployments are compared,
// reporting the fraction of the accuracy drop NORA recovers.
//
// Usage:
//
//	nora-mitigation [-modeldir testdata/models] [-eval 150] [-mse 0.00155]
//	                [-models opt-c3,...] [-csv out.csv]
package main

import (
	"flag"
	"fmt"
	"os"

	"nora/internal/cli"
	"nora/internal/harness"
)

func main() {
	var opt cli.Options
	opt.RegisterFlags(flag.CommandLine)
	mse := flag.Float64("mse", harness.MitigationMSETarget, "matched reference-map MSE level")
	models := flag.String("models", "", "comma-separated zoo keys (default: all)")
	csvPath := flag.String("csv", "", "also write results as CSV to this path")
	flag.Parse()

	if err := opt.Finish(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	ws, err := opt.LoadModels(*models)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	eng := opt.NewEngine()
	rows := harness.Mitigation(eng, ws, *mse)
	tbl := harness.MitigationTable(rows)
	if err := tbl.WriteText(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *csvPath != "" {
		if err := tbl.WriteCSVFile(*csvPath); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
