// Command nora-mitigation regenerates the paper's Fig. 5(b)(c): each
// non-ideality is scaled to the same matched reference MSE (0.0015–0.0016)
// and applied alone; the naive analog and NORA deployments are compared,
// reporting the fraction of the accuracy drop NORA recovers.
//
// Usage:
//
//	nora-mitigation [-modeldir testdata/models] [-eval 150] [-mse 0.00155]
//	                [-models opt-c3,...] [-csv out.csv]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"nora/internal/analog"
	"nora/internal/engine"
	"nora/internal/harness"
	"nora/internal/model"
	"nora/internal/rng"
)

func main() {
	modelDir := flag.String("modeldir", "testdata/models", "directory with cached models")
	evalN := flag.Int("eval", harness.EvalSize, "evaluation sequences per deployment")
	mse := flag.Float64("mse", harness.MitigationMSETarget, "matched reference-map MSE level")
	models := flag.String("models", "", "comma-separated zoo keys (default: all)")
	csvPath := flag.String("csv", "", "also write results as CSV to this path")
	batch := flag.Int("batch", 0, "analog batch rows per pass (0 = package default, 1 = legacy row loop; never changes results)")
	stream := flag.String("noise-stream", "v1", "analog noise stream: v1 (Box-Muller, bit-compatible with prior runs) or v2 (ziggurat, faster)")
	flag.Parse()

	sv, err := rng.ParseStreamVersion(*stream)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	analog.SetDefaultNoiseStream(sv)

	specs := model.Zoo()
	if *models != "" {
		specs = specs[:0]
		for _, key := range strings.Split(*models, ",") {
			spec, err := model.ByKey(strings.TrimSpace(key))
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			specs = append(specs, spec)
		}
	}
	ws, err := harness.LoadZoo(*modelDir, specs, *evalN, harness.CalibSize)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	eng := engine.New(engine.Config{BatchRows: *batch})
	rows := harness.Mitigation(eng, ws, *mse)
	tbl := harness.MitigationTable(rows)
	if err := tbl.WriteText(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *csvPath != "" {
		if err := tbl.WriteCSVFile(*csvPath); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
