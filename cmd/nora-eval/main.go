// Command nora-eval regenerates the paper's headline accuracy results:
// Fig. 5(a) — OPT-class models under digital FP, naive analog and NORA —
// and Table III — NORA vs digital FP for the LLaMA/Mistral-class models.
// Deployments use the Table II analog preset.
//
// Usage:
//
//	nora-eval [-modeldir testdata/models] [-eval 150] [-family all|opt|llama]
//	          [-csv out.csv]
package main

import (
	"flag"
	"fmt"
	"os"

	"nora/internal/analog"
	"nora/internal/cli"
	"nora/internal/harness"
	"nora/internal/model"
)

func main() {
	var opt cli.Options
	opt.RegisterFlags(flag.CommandLine)
	family := flag.String("family", "all", "which models: all, opt (Fig. 5a), llama (Table III) or task (generalization pair)")
	csvPath := flag.String("csv", "", "also write results as CSV to this path")
	baselines := flag.Bool("baselines", false, "also compare against digital W8A8 / SmoothQuant PTQ baselines")
	replicas := flag.Int("replicas", 1, "independent hardware instances per deployment (> 1 adds mean±std)")
	flag.Parse()

	if err := opt.Finish(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	var optRows, otherRows []harness.AccuracyRow
	cfg := analog.PaperPreset()
	eng := opt.NewEngine()

	if *family == "all" || *family == "opt" {
		ws, err := opt.LoadWorkloads(model.OPTSpecs())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		var tbl *harness.Table
		if *replicas > 1 {
			stats := harness.OverallAccuracyReplicated(eng, ws, cfg, *replicas)
			tbl = harness.AccuracyStatsTable("Fig. 5(a) — OPT-class accuracy (mean±std over hardware instances)", stats)
		} else {
			optRows = harness.OverallAccuracy(eng, ws, cfg)
			tbl = harness.AccuracyTable("Fig. 5(a) — OPT-class accuracy: digital FP vs naive analog vs NORA", optRows)
		}
		if err := tbl.WriteText(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println()
	}
	if *family == "all" || *family == "llama" {
		ws, err := opt.LoadWorkloads(model.OtherSpecs())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		otherRows = harness.OverallAccuracy(eng, ws, cfg)
		tbl := harness.AccuracyTable("Table III — NORA accuracy for LLaMA/Mistral-class models", otherRows)
		if err := tbl.WriteText(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	if *family == "all" || *family == "task" {
		ws, err := opt.LoadWorkloads(model.TaskSpecs())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println()
		rows := harness.OverallAccuracy(eng, ws, cfg)
		tbl := harness.AccuracyTable("Ext. — task generalization: key recall vs majority vote (same architecture)", rows)
		if err := tbl.WriteText(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	if *baselines {
		ws, err := opt.LoadWorkloads(model.Zoo())
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println()
		rows := harness.BaselineComparison(eng, ws, cfg)
		if err := harness.BaselineTable(rows).WriteText(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}

	if *csvPath != "" {
		all := append(append([]harness.AccuracyRow{}, optRows...), otherRows...)
		tbl := harness.AccuracyTable("overall accuracy", all)
		if err := tbl.WriteCSVFile(*csvPath); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
