// Command nora-sensitivity regenerates the paper's Fig. 3: the accuracy
// drop each analog non-ideality causes alone, at noise levels calibrated
// to fixed reference-map MSE values, across the model zoo.
//
// Usage:
//
//	nora-sensitivity [-modeldir testdata/models] [-eval 150] [-csv out.csv]
//	                 [-models opt-c3,mistral-c]
package main

import (
	"flag"
	"fmt"
	"os"

	"nora/internal/cli"
	"nora/internal/harness"
	"nora/internal/prof"
)

func main() {
	var opt cli.Options
	opt.RegisterFlags(flag.CommandLine)
	csvPath := flag.String("csv", "", "also write results as CSV to this path")
	models := flag.String("models", "", "comma-separated zoo keys (default: all)")
	chart := flag.Bool("chart", false, "also render ASCII accuracy-vs-MSE charts per noise kind")
	flag.Parse()

	if err := opt.Finish(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	stopProf := prof.Start()
	defer stopProf()

	ws, err := opt.LoadModels(*models)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	eng := opt.NewEngine()
	points := harness.Sensitivity(eng, ws, harness.PaperMSETargets())
	tbl := harness.SensitivityTable(points)
	if err := tbl.WriteText(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *csvPath != "" {
		if err := tbl.WriteCSVFile(*csvPath); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	fmt.Fprintln(os.Stderr, eng.Stats())
	if *chart {
		fmt.Println()
		if err := harness.SensitivityCharts(points, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}
