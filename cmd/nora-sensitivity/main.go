// Command nora-sensitivity regenerates the paper's Fig. 3: the accuracy
// drop each analog non-ideality causes alone, at noise levels calibrated
// to fixed reference-map MSE values, across the model zoo.
//
// Usage:
//
//	nora-sensitivity [-modeldir testdata/models] [-eval 150] [-csv out.csv]
//	                 [-models opt-c3,mistral-c]
package main

import (
	"flag"
	"fmt"
	"os"
	"strings"

	"nora/internal/analog"
	"nora/internal/engine"
	"nora/internal/harness"
	"nora/internal/model"
	"nora/internal/prof"
	"nora/internal/rng"
)

func main() {
	modelDir := flag.String("modeldir", "testdata/models", "directory with cached models")
	evalN := flag.Int("eval", harness.EvalSize, "evaluation sequences per point")
	csvPath := flag.String("csv", "", "also write results as CSV to this path")
	models := flag.String("models", "", "comma-separated zoo keys (default: all)")
	chart := flag.Bool("chart", false, "also render ASCII accuracy-vs-MSE charts per noise kind")
	batch := flag.Int("batch", 0, "analog batch rows per pass (0 = package default, 1 = legacy row loop; never changes results)")
	stream := flag.String("noise-stream", "v1", "analog noise stream: v1 (Box-Muller, bit-compatible with prior runs) or v2 (ziggurat, faster)")
	flag.Parse()

	sv, err := rng.ParseStreamVersion(*stream)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	analog.SetDefaultNoiseStream(sv)

	stopProf := prof.Start()
	defer stopProf()

	specs, err := selectSpecs(*models)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	ws, err := harness.LoadZoo(*modelDir, specs, *evalN, harness.CalibSize)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	eng := engine.New(engine.Config{BatchRows: *batch})
	points := harness.Sensitivity(eng, ws, harness.PaperMSETargets())
	tbl := harness.SensitivityTable(points)
	if err := tbl.WriteText(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if *csvPath != "" {
		if err := tbl.WriteCSVFile(*csvPath); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
	fmt.Fprintln(os.Stderr, eng.Stats())
	if *chart {
		fmt.Println()
		if err := harness.SensitivityCharts(points, os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

func selectSpecs(keys string) ([]model.Spec, error) {
	if keys == "" {
		return model.Zoo(), nil
	}
	var specs []model.Spec
	for _, key := range strings.Split(keys, ",") {
		spec, err := model.ByKey(strings.TrimSpace(key))
		if err != nil {
			return nil, err
		}
		specs = append(specs, spec)
	}
	return specs, nil
}
