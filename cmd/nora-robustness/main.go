// Command nora-robustness runs the device-fault robustness study (E19):
// accuracy versus stuck-at device fault rate and versus deploy age under
// conductance drift, comparing naive analog, NORA, and the mitigated arm
// (program-verify retry + spare-column remapping for faults; global drift
// compensation for aging) on the paper-preset noise stack.
//
// Usage:
//
//	nora-robustness [-modeldir testdata/models] [-eval 150]
//	                [-models opt-c3,mistral-c] [-rates 0,0.001,0.01]
//	                [-ages 0,3600,86400] [-csv out] [-quick]
package main

import (
	"flag"
	"fmt"
	"os"
	"strconv"
	"strings"

	"nora/internal/analog"
	"nora/internal/engine"
	"nora/internal/harness"
	"nora/internal/model"
	"nora/internal/prof"
	"nora/internal/rng"
)

func main() {
	modelDir := flag.String("modeldir", "testdata/models", "directory with cached models")
	evalN := flag.Int("eval", harness.EvalSize, "evaluation sequences per point")
	csvPrefix := flag.String("csv", "", "also write results as CSV to <prefix>-faults.csv and <prefix>-drift.csv")
	models := flag.String("models", "", "comma-separated zoo keys (default: all)")
	rates := flag.String("rates", "", "comma-separated stuck-at fault rates (default: study ladder)")
	ages := flag.String("ages", "", "comma-separated deploy ages in seconds (default: study ladder)")
	quick := flag.Bool("quick", false, "smoke mode: one model, small eval split, short ladders")
	batch := flag.Int("batch", 0, "analog batch rows per pass (0 = package default, 1 = legacy row loop; never changes results)")
	stream := flag.String("noise-stream", "v1", "analog noise stream: v1 (Box-Muller, bit-compatible with prior runs) or v2 (ziggurat, faster)")
	flag.Parse()
	if err := run(*modelDir, *csvPrefix, *models, *rates, *ages, *evalN, *batch, *stream, *quick); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(modelDir, csvPrefix, models, rates, ages string, evalN, batch int, stream string, quick bool) error {
	sv, err := rng.ParseStreamVersion(stream)
	if err != nil {
		return err
	}
	analog.SetDefaultNoiseStream(sv)

	stopProf := prof.Start()
	defer stopProf()

	rateLadder := harness.DefaultFaultRates()
	ageLadder := harness.DefaultDriftAges()
	if quick {
		rateLadder = []float64{0, 0.01, 0.05}
		ageLadder = []float64{0, 3600}
		if models == "" {
			models = "opt-c3"
		}
		if evalN == harness.EvalSize {
			evalN = 30
		}
	}
	if rates != "" {
		if rateLadder, err = parseFloats(rates); err != nil {
			return fmt.Errorf("-rates: %w", err)
		}
	}
	if ages != "" {
		if ageLadder, err = parseFloats(ages); err != nil {
			return fmt.Errorf("-ages: %w", err)
		}
	}

	specs, err := selectSpecs(models)
	if err != nil {
		return err
	}
	ws, err := harness.LoadZoo(modelDir, specs, evalN, harness.CalibSize)
	if err != nil {
		return err
	}

	eng := engine.New(engine.Config{BatchRows: batch})
	base := analog.PaperPreset()

	faultRows := harness.FaultSweep(eng, ws, base, rateLadder)
	faultTbl := harness.FaultTable(faultRows)
	if err := faultTbl.WriteText(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	driftRows := harness.DriftAgeSweep(eng, ws, base, ageLadder)
	driftTbl := harness.DriftAgeTable(driftRows)
	if err := driftTbl.WriteText(os.Stdout); err != nil {
		return err
	}

	if csvPrefix != "" {
		if err := faultTbl.WriteCSVFile(csvPrefix + "-faults.csv"); err != nil {
			return err
		}
		if err := driftTbl.WriteCSVFile(csvPrefix + "-drift.csv"); err != nil {
			return err
		}
	}
	fmt.Fprintln(os.Stderr, eng.Stats())
	return nil
}

func selectSpecs(keys string) ([]model.Spec, error) {
	if keys == "" {
		return model.Zoo(), nil
	}
	var specs []model.Spec
	for _, key := range strings.Split(keys, ",") {
		spec, err := model.ByKey(strings.TrimSpace(key))
		if err != nil {
			return nil, err
		}
		specs = append(specs, spec)
	}
	return specs, nil
}

func parseFloats(list string) ([]float64, error) {
	var out []float64
	for _, s := range strings.Split(list, ",") {
		v, err := strconv.ParseFloat(strings.TrimSpace(s), 64)
		if err != nil {
			return nil, err
		}
		out = append(out, v)
	}
	return out, nil
}
