// Command nora-robustness runs the device-fault robustness study (E19):
// accuracy versus stuck-at device fault rate and versus deploy age under
// conductance drift, comparing naive analog, NORA, and the mitigated arm
// (program-verify retry + spare-column remapping for faults; global drift
// compensation for aging) on the paper-preset noise stack.
//
// Usage:
//
//	nora-robustness [-modeldir testdata/models] [-eval 150]
//	                [-models opt-c3,mistral-c] [-rates 0,0.001,0.01]
//	                [-ages 0,3600,86400] [-csv out] [-quick]
package main

import (
	"flag"
	"fmt"
	"os"

	"nora/internal/analog"
	"nora/internal/cli"
	"nora/internal/harness"
	"nora/internal/prof"
)

func main() {
	var opt cli.Options
	opt.RegisterFlags(flag.CommandLine)
	csvPrefix := flag.String("csv", "", "also write results as CSV to <prefix>-faults.csv and <prefix>-drift.csv")
	models := flag.String("models", "", "comma-separated zoo keys (default: all)")
	rates := flag.String("rates", "", "comma-separated stuck-at fault rates (default: study ladder)")
	ages := flag.String("ages", "", "comma-separated deploy ages in seconds (default: study ladder)")
	flag.Parse()
	if err := run(&opt, *csvPrefix, *models, *rates, *ages); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(opt *cli.Options, csvPrefix, models, rates, ages string) error {
	if err := opt.Finish(); err != nil {
		return err
	}

	stopProf := prof.Start()
	defer stopProf()

	rateLadder := harness.DefaultFaultRates()
	ageLadder := harness.DefaultDriftAges()
	if opt.Quick {
		rateLadder = []float64{0, 0.01, 0.05}
		ageLadder = []float64{0, 3600}
		if models == "" {
			models = "opt-c3"
		}
		opt.QuickEval(30)
	}
	var err error
	if rates != "" {
		if rateLadder, err = cli.ParseFloats(rates); err != nil {
			return fmt.Errorf("-rates: %w", err)
		}
	}
	if ages != "" {
		if ageLadder, err = cli.ParseFloats(ages); err != nil {
			return fmt.Errorf("-ages: %w", err)
		}
	}

	ws, err := opt.LoadModels(models)
	if err != nil {
		return err
	}

	eng := opt.NewEngine()
	base := analog.PaperPreset()

	faultRows := harness.FaultSweep(eng, ws, base, rateLadder)
	faultTbl := harness.FaultTable(faultRows)
	if err := faultTbl.WriteText(os.Stdout); err != nil {
		return err
	}
	fmt.Println()
	driftRows := harness.DriftAgeSweep(eng, ws, base, ageLadder)
	driftTbl := harness.DriftAgeTable(driftRows)
	if err := driftTbl.WriteText(os.Stdout); err != nil {
		return err
	}

	if csvPrefix != "" {
		if err := faultTbl.WriteCSVFile(csvPrefix + "-faults.csv"); err != nil {
			return err
		}
		if err := driftTbl.WriteCSVFile(csvPrefix + "-drift.csv"); err != nil {
			return err
		}
	}
	fmt.Fprintln(os.Stderr, eng.Stats())
	return nil
}
