// Command nora-report regenerates the complete evaluation — every table
// and figure of the paper plus the extension studies — and writes one
// consolidated markdown report. This is the single-command path from a
// fresh checkout to the full results of EXPERIMENTS.md.
//
// Usage:
//
//	nora-report [-modeldir testdata/models] [-out results/report.md]
//	            [-eval 150] [-quick]
//
// -quick shrinks the evaluation sets and sweeps for a fast smoke run
// (~2–3 min with a cached zoo); the default settings reproduce the
// full-scale numbers (~20–30 min).
package main

import (
	"flag"
	"fmt"
	"os"
	"path/filepath"
	"time"

	"nora/internal/analog"
	"nora/internal/cli"
	"nora/internal/harness"
	"nora/internal/model"
	"nora/internal/prof"
)

func main() {
	var opt cli.Options
	opt.RegisterFlags(flag.CommandLine)
	out := flag.String("out", "results/report.md", "output markdown path")
	flag.Parse()

	if err := opt.Finish(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	opt.QuickEval(50)

	stopProf := prof.Start()
	err := run(&opt, *out)
	stopProf()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(opt *cli.Options, outPath string) (err error) {
	start := time.Now()
	evalN, quick := opt.EvalN, opt.Quick
	if err := os.MkdirAll(filepath.Dir(outPath), 0o755); err != nil {
		return err
	}
	f, err := os.Create(outPath)
	if err != nil {
		return err
	}
	// A close error means the tail of the report never reached disk; it must
	// fail the run, not leave a silently truncated report behind.
	defer func() {
		if cerr := f.Close(); err == nil {
			err = cerr
		}
	}()

	if _, err := fmt.Fprintf(f, "# NORA reproduction report\n\ngenerated %s · eval=%d per point · quick=%v\n\n",
		time.Now().Format(time.RFC3339), evalN, quick); err != nil {
		return err
	}

	emit := func(tbl *harness.Table) error {
		if err := tbl.WriteMarkdown(f); err != nil {
			return err
		}
		fmt.Printf("[%7s] %s\n", time.Since(start).Round(time.Second), tbl.Title)
		return nil
	}

	eng := opt.NewEngine()

	// Workload sets.
	all, err := opt.LoadWorkloads(model.Zoo())
	if err != nil {
		return err
	}
	var opts, others, tasks, focus []*harness.Workload
	for _, w := range all {
		switch w.Spec.Family {
		case "opt":
			opts = append(opts, w)
		case "llama", "mistral":
			others = append(others, w)
		}
		if w.Spec.Key == "opt-c3" || w.Spec.Key == "opt-c3m" {
			tasks = append(tasks, w)
		}
		if w.Spec.Key == "opt-c3" || w.Spec.Key == "llama3-c" || w.Spec.Key == "mistral-c" {
			focus = append(focus, w)
		}
	}

	// E1 — Fig. 3 (recall-protocol models only).
	targets := harness.PaperMSETargets()
	var sensWs []*harness.Workload
	for _, w := range all {
		if w.Spec.Task == "" || w.Spec.Task == "recall" {
			sensWs = append(sensWs, w)
		}
	}
	if quick {
		targets = []float64{targets[1], targets[len(targets)-1]}
		sensWs = focus
	}
	if err := emit(harness.SensitivityTable(harness.Sensitivity(eng, sensWs, targets))); err != nil {
		return err
	}

	// E3/E4 — Fig. 5(a), Table III.
	cfg := analog.PaperPreset()
	if err := emit(harness.AccuracyTable("Fig. 5(a) — OPT-class accuracy", harness.OverallAccuracy(eng, opts, cfg))); err != nil {
		return err
	}
	if err := emit(harness.AccuracyTable("Table III — LLaMA/Mistral-class accuracy", harness.OverallAccuracy(eng, others, cfg))); err != nil {
		return err
	}

	// E5 — Fig. 5(b)(c).
	mitWs := sensWs
	if err := emit(harness.MitigationTable(harness.Mitigation(eng, mitWs, harness.MitigationMSETarget))); err != nil {
		return err
	}

	// E6/E7 — Fig. 6.
	if err := emit(harness.Fig6Table(harness.DistributionAnalysis(eng, focus, "attn.q", cfg))); err != nil {
		return err
	}

	// E8 — drift.
	if err := emit(harness.DriftTable(harness.DriftStudy(eng, focus, 3600))); err != nil {
		return err
	}

	// E9 — λ ablation.
	lambdas := []float64{0.1, 0.25, 0.5, 0.75, 0.9, 1.0}
	if quick {
		lambdas = []float64{0.25, 0.5, 1.0}
	}
	if err := emit(harness.LambdaTable(harness.LambdaAblation(eng, focus, lambdas))); err != nil {
		return err
	}

	// E10 — cost estimate.
	if err := emit(harness.CostTable(harness.CostStudy(eng, focus, cfg, opt.CostModel()))); err != nil {
		return err
	}

	// E11 — per-layer ablation (focused model only; it is eval-heavy).
	if !quick {
		if err := emit(harness.PerLayerTable(harness.PerLayerSensitivity(eng, focus[:1], cfg))); err != nil {
			return err
		}
	}

	// E12 — digital PTQ baselines.
	if err := emit(harness.BaselineTable(harness.BaselineComparison(eng, focus, cfg))); err != nil {
		return err
	}

	// E13 — calibration quantile.
	qs := []float64{0.9, 0.99, 0.999, 1.0}
	if quick {
		qs = []float64{0.9, 1.0}
	}
	if err := emit(harness.QuantileTable(harness.CalibrationAblation(eng, focus, qs))); err != nil {
		return err
	}

	// E15 — multi-cell weight slicing.
	schemes := [][2]int{{2, 4}, {3, 3}, {4, 2}}
	if quick {
		schemes = [][2]int{{2, 4}}
	}
	if err := emit(harness.SlicingTable(harness.SlicingStudy(eng, focus, schemes))); err != nil {
		return err
	}

	// E16 — task generalization.
	if err := emit(harness.AccuracyTable("Ext. — task generalization (recall vs majority)", harness.OverallAccuracy(eng, tasks, cfg))); err != nil {
		return err
	}

	// E17 — operating modes.
	if err := emit(harness.ModeTable(harness.ModeStudy(eng, focus))); err != nil {
		return err
	}

	// E19 — device-fault robustness (stuck-at faults, drift aging).
	rates := harness.DefaultFaultRates()
	ages := harness.DefaultDriftAges()
	if quick {
		rates = []float64{0, 0.01, 0.05}
		ages = []float64{0, 3600}
	}
	if err := emit(harness.FaultTable(harness.FaultSweep(eng, focus, cfg, rates))); err != nil {
		return err
	}
	if err := emit(harness.DriftAgeTable(harness.DriftAgeSweep(eng, focus, cfg, ages))); err != nil {
		return err
	}

	stats := eng.Stats()
	cost := stats.Cost
	if _, err := fmt.Fprintf(f, "---\nengine stats: `%s`\n\ncost (all deployments, counted events): analog %.1f uJ / %.1f ms vs digital %.1f uJ / %.1f ms — energy saving %.1fx, bm-retries %d\n\ntotal wall time: %s\n",
		stats,
		cost.Analog.EnergyPJ/1e6, cost.Analog.LatencyNS/1e6,
		cost.Digital.EnergyPJ/1e6, cost.Digital.LatencyNS/1e6,
		cost.EnergySaving, cost.Analog.Counters.BMRetries,
		time.Since(start).Round(time.Second)); err != nil {
		return err
	}
	fmt.Println(stats)
	fmt.Printf("report written to %s (%s)\n", outPath, time.Since(start).Round(time.Second))
	return nil
}
