// Command nora-analysis regenerates the paper's Fig. 6 — per-layer input
// and weight kurtosis (a, b) and the α·γ·g_max scale factors (c) under the
// naive and NORA mappings — plus the extension studies: the 1-hour drift
// experiment of §VII and the λ-migration ablation.
//
// Usage:
//
//	nora-analysis [-modeldir testdata/models] [-layer attn.q]
//	              [-models opt-c3,llama3-c,mistral-c]
//	              [-drift] [-driftsec 3600] [-lambda] [-gen] [-csv prefix]
package main

import (
	"flag"
	"fmt"
	"os"

	"nora/internal/analog"
	"nora/internal/cli"
	"nora/internal/core"
	"nora/internal/harness"
)

func main() {
	var opt cli.Options
	opt.RegisterFlags(flag.CommandLine)
	layer := flag.String("layer", "attn.q", "layer-name filter for the Fig. 6 series (empty = all layers)")
	models := flag.String("models", "opt-c3,llama3-c,mistral-c", "comma-separated zoo keys (Fig. 6 uses these three)")
	drift := flag.Bool("drift", false, "also run the 1-hour drift study (paper §VII)")
	driftSec := flag.Float64("driftsec", 3600, "drift time in seconds")
	lambda := flag.Bool("lambda", false, "also run the λ migration-strength ablation")
	cost := flag.Bool("cost", false, "also estimate energy/latency of the analog deployment")
	perLayer := flag.Bool("perlayer", false, "also run the per-layer analog sensitivity ablation")
	quantile := flag.Bool("quantile", false, "also run the calibration clipping-quantile ablation")
	slicing := flag.Bool("slicing", false, "also run the multi-cell weight-precision study")
	modes := flag.Bool("modes", false, "also run the tile operating-mode study (bit-serial, write-verify)")
	gen := flag.Bool("gen", false, "also run the continuous-batching generation throughput study")
	genConc := flag.String("genconc", "1,2,4,8", "comma-separated decode batch widths for -gen")
	hwa := flag.Bool("hwa", false, "also compare against hardware-aware noise-injection fine-tuning")
	hwaSteps := flag.Int("hwasteps", 300, "fine-tuning steps for the HWA baseline")
	csvPrefix := flag.String("csv", "", "write CSVs with this path prefix")
	flag.Parse()

	if err := opt.Finish(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	ws, err := opt.LoadModels(*models)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	emit := func(tbl *harness.Table, name string) {
		if err := tbl.WriteText(os.Stdout); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		fmt.Println()
		if *csvPrefix != "" {
			if err := tbl.WriteCSVFile(*csvPrefix + name + ".csv"); err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
		}
	}

	eng := opt.NewEngine()
	rows := harness.DistributionAnalysis(eng, ws, *layer, analog.PaperPreset())
	emit(harness.Fig6Table(rows), "fig6")

	if *drift {
		emit(harness.DriftTable(harness.DriftStudy(eng, ws, *driftSec)), "drift")
	}
	if *lambda {
		lambdas := []float64{0.1, 0.25, 0.5, 0.75, 0.9, 1.0}
		emit(harness.LambdaTable(harness.LambdaAblation(eng, ws, lambdas)), "lambda")
	}
	if *cost {
		rows := harness.CostStudy(eng, ws, analog.PaperPreset(), opt.CostModel())
		emit(harness.CostTable(rows), "cost")
	}
	if *perLayer {
		rows := harness.PerLayerSensitivity(eng, ws, analog.PaperPreset())
		emit(harness.PerLayerTable(rows), "perlayer")
	}
	if *quantile {
		qs := []float64{0.9, 0.99, 0.999, 1.0}
		emit(harness.QuantileTable(harness.CalibrationAblation(eng, ws, qs)), "quantile")
	}
	if *slicing {
		schemes := [][2]int{{2, 4}, {3, 3}, {4, 2}}
		emit(harness.SlicingTable(harness.SlicingStudy(eng, ws, schemes)), "slicing")
	}
	if *modes {
		emit(harness.ModeTable(harness.ModeStudy(eng, ws)), "modes")
	}
	if *gen {
		conc, err := cli.ParseInts(*genConc)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		spec := harness.GenSpec{Mode: core.DeployAnalogNORA, Config: analog.PaperPreset(), Concurrencies: conc}
		rows, err := harness.GenerationThroughput(eng, ws, spec)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		emit(harness.GenerationTable(rows), "gen")
	}
	if *hwa {
		var rows []harness.HWARow
		for _, w := range ws {
			row, err := harness.HWAStudy(eng, w, *hwaSteps, analog.PaperPreset())
			if err != nil {
				fmt.Fprintln(os.Stderr, err)
				os.Exit(1)
			}
			rows = append(rows, row)
		}
		emit(harness.HWATable(rows), "hwa")
	}
}
