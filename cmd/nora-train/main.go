// Command nora-train trains the zoo models standing in for the paper's
// LLMs (§V) and caches them under the model directory. Subsequent
// experiment commands load the cache.
//
// Usage:
//
//	nora-train [-modeldir testdata/models] [-only key] [-force]
package main

import (
	"flag"
	"fmt"
	"os"
	"time"

	"nora/internal/cli"
	"nora/internal/harness"
	"nora/internal/model"
	"nora/internal/nn"
)

func main() {
	var opt cli.Options
	opt.RegisterFlags(flag.CommandLine)
	only := flag.String("only", "", "train a single zoo key (e.g. opt-c3)")
	force := flag.Bool("force", false, "retrain even when a cache exists")
	flag.Parse()

	if err := opt.Finish(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	specs := model.Zoo()
	if *only != "" {
		spec, err := model.ByKey(*only)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		specs = []model.Spec{spec}
	}

	tbl := harness.NewTable("Model zoo training", "key", "model", "params", "steps", "final-loss", "digital-acc", "chance", "time")
	for _, spec := range specs {
		path := model.CachePath(opt.ModelDir, spec.Key)
		if !*force {
			// Validate the cache, don't just stat it: a corrupt or stale file
			// would otherwise be reported as cached here and then silently
			// retrained (and rewritten) by whichever experiment loads it next.
			if _, err := os.Stat(path); err == nil {
				if m, err := nn.LoadFile(path); err == nil && m.Cfg == spec.Cfg {
					fmt.Printf("%-10s cached at %s (use -force to retrain)\n", spec.Key, path)
					continue
				} else if err != nil {
					fmt.Printf("%-10s cache at %s unreadable (%v) — retraining\n", spec.Key, path, err)
				} else {
					fmt.Printf("%-10s cache at %s is stale (spec changed) — retraining\n", spec.Key, path)
				}
			}
		}
		start := time.Now()
		m, res, err := model.Train(spec)
		if err != nil {
			fmt.Fprintf(os.Stderr, "training %s: %v\n", spec.Key, err)
			os.Exit(1)
		}
		if err := os.MkdirAll(opt.ModelDir, 0o755); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		if err := m.SaveFile(path); err != nil {
			fmt.Fprintf(os.Stderr, "saving %s: %v\n", spec.Key, err)
			os.Exit(1)
		}
		tbl.Add(spec.Key, spec.Display, res.NumParams, res.Steps, res.FinalLoss, res.EvalAcc, res.EvalChance,
			time.Since(start).Round(time.Millisecond).String())
		fmt.Printf("%-10s trained: digital accuracy %.3f (chance %.3f), saved to %s\n",
			spec.Key, res.EvalAcc, res.EvalChance, path)
	}
	fmt.Println()
	if err := tbl.WriteText(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}
