// Command nora-loadgen is a closed-loop load generator for nora-serve:
// for each concurrency level it keeps that many in-flight predict requests
// against the server for a fixed duration, then reports client-side
// latency quantiles (p50/p95/p99), throughput, and rejection counts, plus
// the server-side micro-batch statistics read back from /statz. The result
// is the throughput-vs-concurrency curve that shows dynamic batching
// amortizing analog reads across requests.
//
// With -generate the workload switches to streaming /v1/generate requests:
// each worker holds one generation stream open at a time, and the report
// shows time-to-first-token and inter-token latency quantiles (p50/p95/p99)
// plus the aggregate token throughput and the server's decode-batch
// occupancy — the continuous-batching throughput-vs-concurrency curve.
// -prompt-mix draws each stream's prompt length from a weighted mix
// ("16:4,128:2,512:1" — length:weight pairs), the workload shape where
// chunked prefill keeps short-prompt TTFT flat while long prompts prefill
// incrementally.
//
// Usage:
//
//	nora-loadgen [-url http://localhost:8080] [-model opt-c1] [-mode nora]
//	             [-concurrency 1,8,32] [-duration 10s] [-ctxlen 12]
//	             [-generate] [-max-tokens 16] [-temperature 0] [-topk 0]
//	             [-prompt-mix 16:4,128:2,512:1] [-seed 1] [-csv out.csv]
//
// Contexts are random token windows drawn from the model's vocabulary
// (deterministic per -seed); the server's answers are deterministic per
// context, so two identical loadgen runs exercise identical work.
package main

import (
	"bufio"
	"bytes"
	"encoding/json"
	"flag"
	"fmt"
	"io"
	"net/http"
	"os"
	"sort"
	"strconv"
	"strings"
	"sync"
	"time"

	"nora/internal/cli"
	"nora/internal/harness"
	"nora/internal/model"
	"nora/internal/rng"
	"nora/internal/serve"
)

type levelResult struct {
	concurrency int
	ok, rejects int
	errs        int
	elapsed     time.Duration
	latencies   []time.Duration // successful requests only
}

func (l *levelResult) quantile(q float64) time.Duration {
	if len(l.latencies) == 0 {
		return 0
	}
	idx := int(q * float64(len(l.latencies)-1))
	return l.latencies[idx]
}

func main() {
	var opt cli.Options
	opt.RegisterFlags(flag.CommandLine)
	url := flag.String("url", "http://localhost:8080", "nora-serve base URL")
	modelKey := flag.String("model", "opt-c1", "zoo key of the model to load")
	mode := flag.String("mode", "nora", "deployment mode: digital, naive or nora")
	levels := flag.String("concurrency", "1,8,32", "comma-separated closed-loop concurrency levels")
	duration := flag.Duration("duration", 10*time.Second, "measurement window per concurrency level")
	ctxLen := flag.Int("ctxlen", 12, "tokens per predict context (or generate prompt)")
	seed := flag.Uint64("seed", 1, "context generator seed")
	csvPath := flag.String("csv", "", "also write the result table as CSV to this path")
	generate := flag.Bool("generate", false, "drive streaming /v1/generate instead of /v1/predict")
	maxTokens := flag.Int("max-tokens", 16, "generation: tokens requested per stream")
	temperature := flag.Float64("temperature", 0, "generation: sampling temperature (0 = greedy)")
	topK := flag.Int("topk", 0, "generation: top-k filter (0 = full vocabulary)")
	promptMixSpec := flag.String("prompt-mix", "", "generation: weighted prompt-length mix as length:weight pairs (e.g. 16:4,128:2,512:1; empty = fixed -ctxlen)")
	flag.Parse()
	if err := opt.Finish(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	spec, err := model.ByKey(*modelKey)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	conc, err := cli.ParseInts(*levels)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	n := *ctxLen
	if n < 1 {
		n = 1
	}
	if n > spec.Cfg.MaxSeq {
		n = spec.Cfg.MaxSeq
	}
	mix, err := parsePromptMix(*promptMixSpec, spec.Cfg.MaxSeq)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	client := &http.Client{Timeout: 2 * time.Minute}
	if err := waitHealthy(client, *url); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	if *generate {
		if err := runGenerateBench(client, *url, *modelKey, *mode, spec.Cfg.Vocab, n, mix,
			conc, *duration, *seed, *maxTokens, *temperature, *topK, *csvPath); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		return
	}
	if mix != nil {
		fmt.Fprintln(os.Stderr, "-prompt-mix only applies with -generate")
		os.Exit(1)
	}

	tbl := harness.NewTable(
		fmt.Sprintf("nora-loadgen — %s/%s, %v per level, ctx %d", *modelKey, *mode, *duration, n),
		"concurrency", "req/s", "ok", "429", "errors", "p50 ms", "p95 ms", "p99 ms", "mean batch")
	for _, c := range conc {
		res := runLevel(client, *url, *modelKey, *mode, spec.Cfg.Vocab, n, c, *duration, *seed)
		// Server-side batching stats, delta'd per level via absolute counters.
		statz, err := fetchStatz(client, *url)
		if err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
		tbl.Add(
			fmt.Sprintf("%d", c),
			float64(res.ok)/res.elapsed.Seconds(),
			float64(res.ok), float64(res.rejects), float64(res.errs),
			float64(res.quantile(0.50))/1e6,
			float64(res.quantile(0.95))/1e6,
			float64(res.quantile(0.99))/1e6,
			statz.Batch.MeanBatch,
		)
	}
	if err := tbl.WriteText(os.Stdout); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	statz, err := fetchStatz(client, *url)
	if err == nil {
		fmt.Printf("\nserver: %d batches carried %d predicts (mean %.2f, max %d), %d rejected, eval-memo hit rate %.0f%%\n",
			statz.Batch.Batches, statz.Batch.Requests, statz.Batch.MeanBatch,
			statz.Batch.MaxBatch, statz.Batch.QueueFull, 100*statz.EvalMemoHitRate)
	}
	if *csvPath != "" {
		if err := tbl.WriteCSVFile(*csvPath); err != nil {
			fmt.Fprintln(os.Stderr, err)
			os.Exit(1)
		}
	}
}

// runLevel keeps `workers` requests in flight for `d`, closed-loop: each
// worker issues its next request as soon as the previous one answers.
func runLevel(client *http.Client, url, modelKey, mode string, vocab, ctxLen, workers int, d time.Duration, seed uint64) levelResult {
	res := levelResult{concurrency: workers}
	deadline := time.Now().Add(d)
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rng.New(seed + uint64(w)*7919)
			var lats []time.Duration
			ok, rejects, errs := 0, 0, 0
			for time.Now().Before(deadline) {
				ctx := make([]int, ctxLen)
				for i := range ctx {
					ctx[i] = int(r.Uint64() % uint64(vocab))
				}
				body, _ := json.Marshal(map[string]any{"model": modelKey, "mode": mode, "context": ctx})
				t0 := time.Now()
				resp, err := client.Post(url+"/v1/predict", "application/json", bytes.NewReader(body))
				if err != nil {
					errs++
					continue
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
				switch resp.StatusCode {
				case http.StatusOK:
					ok++
					lats = append(lats, time.Since(t0))
				case http.StatusTooManyRequests:
					rejects++
					time.Sleep(time.Millisecond) // honor backpressure briefly
				default:
					errs++
				}
			}
			mu.Lock()
			res.ok += ok
			res.rejects += rejects
			res.errs += errs
			res.latencies = append(res.latencies, lats...)
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	res.elapsed = time.Since(start)
	sort.Slice(res.latencies, func(i, j int) bool { return res.latencies[i] < res.latencies[j] })
	return res
}

// promptMix is a weighted distribution over prompt lengths, parsed from the
// -prompt-mix flag.
type promptMix struct {
	lengths []int
	weights []int
	total   int
}

// parsePromptMix parses "length:weight,length:weight,…" (weight omitted =
// 1); an empty spec returns nil (fixed prompt length).
func parsePromptMix(spec string, maxSeq int) (*promptMix, error) {
	if strings.TrimSpace(spec) == "" {
		return nil, nil
	}
	mix := &promptMix{}
	for _, part := range strings.Split(spec, ",") {
		part = strings.TrimSpace(part)
		lenStr, weightStr, hasWeight := strings.Cut(part, ":")
		length, err := strconv.Atoi(lenStr)
		if err != nil || length < 1 || length > maxSeq {
			return nil, fmt.Errorf("prompt-mix entry %q: length must be in [1, %d]", part, maxSeq)
		}
		weight := 1
		if hasWeight {
			if weight, err = strconv.Atoi(weightStr); err != nil || weight < 1 {
				return nil, fmt.Errorf("prompt-mix entry %q: weight must be a positive integer", part)
			}
		}
		mix.lengths = append(mix.lengths, length)
		mix.weights = append(mix.weights, weight)
		mix.total += weight
	}
	return mix, nil
}

// pick draws one prompt length, weight-proportionally.
func (m *promptMix) pick(r *rng.Rand) int {
	u := int(r.Uint64() % uint64(m.total))
	for i, w := range m.weights {
		if u -= w; u < 0 {
			return m.lengths[i]
		}
	}
	return m.lengths[len(m.lengths)-1]
}

func (m *promptMix) String() string {
	parts := make([]string, len(m.lengths))
	for i := range m.lengths {
		parts[i] = fmt.Sprintf("%d:%d", m.lengths[i], m.weights[i])
	}
	return strings.Join(parts, ",")
}

// genLevelResult aggregates one concurrency level of generation streams.
type genLevelResult struct {
	ok, rejects, errs int
	tokens            int64
	elapsed           time.Duration
	ttfts             []time.Duration // request start → first token, per stream
	gaps              []time.Duration // inter-token latencies, per token
}

func quantileDur(sorted []time.Duration, q float64) time.Duration {
	if len(sorted) == 0 {
		return 0
	}
	return sorted[int(q*float64(len(sorted)-1))]
}

// runGenerateBench drives the streaming /v1/generate workload across the
// concurrency levels and prints the TTFT / inter-token / token-throughput
// table, plus the server's decode-batch occupancy delta per level.
func runGenerateBench(client *http.Client, url, modelKey, mode string, vocab, promptLen int, mix *promptMix,
	conc []int, d time.Duration, seed uint64, maxTokens int, temperature float64, topK int, csvPath string) error {
	promptDesc := fmt.Sprintf("prompt %d", promptLen)
	if mix != nil {
		promptDesc = "prompt mix " + mix.String()
	}
	tbl := harness.NewTable(
		fmt.Sprintf("nora-loadgen generate — %s/%s, %v per level, %s, max_tokens %d",
			modelKey, mode, d, promptDesc, maxTokens),
		"concurrency", "tok/s", "streams", "429", "errors",
		"ttft p50 ms", "ttft p95 ms", "ttft p99 ms",
		"itl p50 ms", "itl p95 ms", "itl p99 ms", "decode batch")
	for _, c := range conc {
		before, err := fetchStatz(client, url)
		if err != nil {
			return err
		}
		res := runGenLevel(client, url, modelKey, mode, vocab, promptLen, mix, c, d, seed, maxTokens, temperature, topK)
		after, err := fetchStatz(client, url)
		if err != nil {
			return err
		}
		// Server-side decode-batch occupancy over this level's steps.
		occupancy := 0.0
		if steps := after.Engine.GenSteps - before.Engine.GenSteps; steps > 0 {
			occupancy = float64(after.Engine.GenTokens-before.Engine.GenTokens) / float64(steps)
		}
		tbl.Add(
			fmt.Sprintf("%d", c),
			float64(res.tokens)/res.elapsed.Seconds(),
			float64(res.ok), float64(res.rejects), float64(res.errs),
			float64(quantileDur(res.ttfts, 0.50))/1e6,
			float64(quantileDur(res.ttfts, 0.95))/1e6,
			float64(quantileDur(res.ttfts, 0.99))/1e6,
			float64(quantileDur(res.gaps, 0.50))/1e6,
			float64(quantileDur(res.gaps, 0.95))/1e6,
			float64(quantileDur(res.gaps, 0.99))/1e6,
			occupancy,
		)
	}
	if err := tbl.WriteText(os.Stdout); err != nil {
		return err
	}
	if statz, err := fetchStatz(client, url); err == nil {
		fmt.Printf("\nserver: %d streams produced %d tokens over %d mixed steps "+
			"(mean decode batch %.2f, max rows %d, %.0f tok/s inside steps, "+
			"%d prefill tokens at %.0f tok/s), %d rejected, %d canceled\n",
			statz.Gen.Requests, statz.Gen.Tokens, statz.Gen.Steps,
			statz.Gen.MeanBatch, statz.Gen.MaxBatch, statz.Gen.TokensPerSecond,
			statz.Gen.PrefillTokens, statz.Gen.PrefillTokensPerSecond,
			statz.Gen.QueueFull, statz.Gen.Canceled)
	}
	if csvPath != "" {
		return tbl.WriteCSVFile(csvPath)
	}
	return nil
}

// runGenLevel keeps `workers` generation streams in flight for `d`,
// closed-loop: each worker opens its next stream as soon as the previous
// one finishes, reading NDJSON token events as they arrive.
func runGenLevel(client *http.Client, url, modelKey, mode string, vocab, promptLen int, mix *promptMix, workers int,
	d time.Duration, seed uint64, maxTokens int, temperature float64, topK int) genLevelResult {
	var res genLevelResult
	deadline := time.Now().Add(d)
	var mu sync.Mutex
	var wg sync.WaitGroup
	start := time.Now()
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			r := rng.New(seed + uint64(w)*7919)
			local := genLevelResult{}
			for time.Now().Before(deadline) {
				n := promptLen
				if mix != nil {
					n = mix.pick(r)
				}
				prompt := make([]int, n)
				for i := range prompt {
					prompt[i] = int(r.Uint64() % uint64(vocab))
				}
				body, _ := json.Marshal(map[string]any{
					"model": modelKey, "mode": mode, "prompt": prompt,
					"max_tokens": maxTokens, "temperature": temperature, "top_k": topK,
					"seed": r.Uint64(),
				})
				t0 := time.Now()
				resp, err := client.Post(url+"/v1/generate", "application/json", bytes.NewReader(body))
				if err != nil {
					local.errs++
					continue
				}
				switch resp.StatusCode {
				case http.StatusOK:
					toks, ttft, gaps, ok := drainStream(resp.Body, t0)
					if !ok {
						local.errs++
					} else {
						local.ok++
						local.tokens += int64(toks)
						if toks > 0 {
							local.ttfts = append(local.ttfts, ttft)
							local.gaps = append(local.gaps, gaps...)
						}
					}
				case http.StatusTooManyRequests:
					local.rejects++
					time.Sleep(time.Millisecond) // honor backpressure briefly
				default:
					local.errs++
				}
				io.Copy(io.Discard, resp.Body)
				resp.Body.Close()
			}
			mu.Lock()
			res.ok += local.ok
			res.rejects += local.rejects
			res.errs += local.errs
			res.tokens += local.tokens
			res.ttfts = append(res.ttfts, local.ttfts...)
			res.gaps = append(res.gaps, local.gaps...)
			mu.Unlock()
		}(w)
	}
	wg.Wait()
	res.elapsed = time.Since(start)
	sort.Slice(res.ttfts, func(i, j int) bool { return res.ttfts[i] < res.ttfts[j] })
	sort.Slice(res.gaps, func(i, j int) bool { return res.gaps[i] < res.gaps[j] })
	return res
}

// drainStream reads one NDJSON generation stream, timing the first token
// and every inter-token gap. ok is false when the stream ends without a
// final event or with a non-clean finish ("error" finals count as errors;
// "shutdown" and "canceled" count as clean — the server retired us).
func drainStream(body io.Reader, t0 time.Time) (tokens int, ttft time.Duration, gaps []time.Duration, ok bool) {
	sc := bufio.NewScanner(body)
	prev := t0
	for sc.Scan() {
		var ev struct {
			Token        int    `json:"token"`
			Done         bool   `json:"done"`
			FinishReason string `json:"finish_reason"`
		}
		if err := json.Unmarshal(sc.Bytes(), &ev); err != nil {
			return tokens, ttft, gaps, false
		}
		if ev.Done {
			return tokens, ttft, gaps, ev.FinishReason != "error"
		}
		now := time.Now()
		if tokens == 0 {
			ttft = now.Sub(t0)
		} else {
			gaps = append(gaps, now.Sub(prev))
		}
		prev = now
		tokens++
	}
	return tokens, ttft, gaps, false
}

func fetchStatz(client *http.Client, url string) (serve.Statz, error) {
	var statz serve.Statz
	resp, err := client.Get(url + "/statz")
	if err != nil {
		return statz, fmt.Errorf("statz: %w", err)
	}
	defer resp.Body.Close()
	if err := json.NewDecoder(resp.Body).Decode(&statz); err != nil {
		return statz, fmt.Errorf("statz: %w", err)
	}
	return statz, nil
}

// waitHealthy polls /healthz so a loadgen started alongside the server
// doesn't count startup as errors.
func waitHealthy(client *http.Client, url string) error {
	var lastErr error
	for i := 0; i < 50; i++ {
		resp, err := client.Get(url + "/healthz")
		if err == nil {
			io.Copy(io.Discard, resp.Body)
			resp.Body.Close()
			if resp.StatusCode == http.StatusOK {
				return nil
			}
			lastErr = fmt.Errorf("healthz: status %d", resp.StatusCode)
		} else {
			lastErr = err
		}
		time.Sleep(200 * time.Millisecond)
	}
	return fmt.Errorf("server at %s never became healthy: %w", url, lastErr)
}
