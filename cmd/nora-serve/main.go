// Command nora-serve exposes the experiment engine as an HTTP inference
// service (internal/serve): micro-batched /v1/predict, continuous-batched
// streaming /v1/generate, engine-memoized /v1/eval, /healthz, and /statz. Models come from the same cached zoo the
// offline experiments use, so a served answer is comparable — and for
// /v1/eval identical — to the corresponding offline run.
//
// Usage:
//
//	nora-serve [-addr :8080] [-models opt-c1,llama-c1] [-modeldir testdata/models]
//	           [-max-batch 16] [-max-delay 2ms] [-queue 256] [-timeout 30s]
//	           [-decode-batch 16] [-prefill-chunk 64] [-kv-pages 0]
//	           [-chips 1] [-replicas 0] [-policy health] [-fault-gradient 0]
//	           [-eval 150] [-batch 0] [-noise-stream v1]
//
// With -chips > 1 requests route through a simulated multi-chip fleet
// (internal/fleet): each chip realizes independent fault/drift draws, the
// router picks replicas by health and load, and /v1/chips scripts drain /
// fail / restore / reprogram scenarios.
//
// Shut down with SIGINT/SIGTERM: the listener stops accepting, in-flight
// requests drain, then the micro-batchers close.
package main

import (
	"context"
	"errors"
	"flag"
	"fmt"
	"log"
	"net/http"
	"os"
	"os/signal"
	"syscall"
	"time"

	"nora/internal/cli"
	"nora/internal/serve"
)

func main() {
	var opt cli.Options
	opt.RegisterFlags(flag.CommandLine)
	var flt cli.FleetOptions
	flt.RegisterFlags(flag.CommandLine)
	addr := flag.String("addr", ":8080", "listen address")
	models := flag.String("models", "", "comma-separated zoo keys to serve (empty = full zoo)")
	maxBatch := flag.Int("max-batch", serve.DefaultMaxBatch, "max predict requests per micro-batch")
	maxDelay := flag.Duration("max-delay", serve.DefaultMaxDelay, "max wait for a micro-batch to fill")
	queue := flag.Int("queue", serve.DefaultQueueDepth, "admission queue depth per deployment (beyond it: 429)")
	timeout := flag.Duration("timeout", serve.DefaultRequestTimeout, "server-side per-request deadline")
	decodeBatch := flag.Int("decode-batch", serve.DefaultMaxDecodeBatch, "max concurrent /v1/generate sequences per decode batch")
	prefillChunk := flag.Int("prefill-chunk", serve.DefaultPrefillChunk, "max prompt tokens consumed per mixed decode step (chunked prefill)")
	kvPages := flag.Int("kv-pages", 0, "KV page pool size per generation scheduler (0 = slab-equivalent)")
	flag.Parse()

	if err := opt.Finish(); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	if err := cli.ValidateServeKnobs(*decodeBatch, *prefillChunk, *kvPages); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	fleetCfg, err := flt.Fleet()
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
	ws, err := opt.LoadModels(*models)
	if err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}

	srv := serve.New(opt.NewEngine(), serve.Config{
		MaxBatch:       *maxBatch,
		MaxDelay:       *maxDelay,
		QueueDepth:     *queue,
		RequestTimeout: *timeout,
		MaxDecodeBatch: *decodeBatch,
		PrefillChunk:   *prefillChunk,
		KVPages:        *kvPages,
		Fleet:          fleetCfg,
	}, ws)
	httpSrv := &http.Server{Addr: *addr, Handler: srv}

	ctx, stop := signal.NotifyContext(context.Background(), os.Interrupt, syscall.SIGTERM)
	defer stop()

	errCh := make(chan error, 1)
	go func() { errCh <- httpSrv.ListenAndServe() }()
	log.Printf("nora-serve: listening on %s, serving %v (max-batch %d, max-delay %v, queue %d, decode-batch %d, prefill-chunk %d, kv-pages %d, chips %d, policy %s)",
		*addr, srv.Models(), *maxBatch, *maxDelay, *queue, *decodeBatch, *prefillChunk, *kvPages, flt.Chips, fleetCfg.Policy)

	select {
	case <-ctx.Done():
		log.Printf("nora-serve: shutting down")
		shutdownCtx, cancel := context.WithTimeout(context.Background(), 30*time.Second)
		defer cancel()
		// Order matters: stop accepting and drain HTTP handlers first, then
		// drain the micro-batchers those handlers were waiting on.
		if err := httpSrv.Shutdown(shutdownCtx); err != nil {
			log.Printf("nora-serve: http shutdown: %v", err)
		}
		if err := srv.Close(); err != nil {
			log.Printf("nora-serve: close: %v", err)
		}
		log.Printf("nora-serve: drained, bye")
	case err := <-errCh:
		if !errors.Is(err, http.ErrServerClosed) {
			log.Fatalf("nora-serve: %v", err)
		}
	}
}
