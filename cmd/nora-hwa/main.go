// Command nora-hwa runs the hardware-aware training study (E25): zoo models
// are fine-tuned under the Rasch-style HWA recipe (ramped output noise,
// drop-connect from the deploy-time stuck-at sampler, crossbar-aware weight
// clamping, distillation from the digital checkpoint) and compared against
// their digital originals across the drift-age axis, extended to one
// simulated year: naive vs NORA+GDC vs HWA+GDC vs NORA+HWA+GDC.
//
// HWA variants are cached alongside the digital zoo under recipe-
// fingerprinted keys, so repeat runs (and CI) skip the fine-tune.
//
// Usage:
//
//	nora-hwa [-modeldir testdata/models] [-eval 150]
//	         [-models opt-c3,mistral-c] [-ages 0,3600,3.156e7]
//	         [-steps 300] [-noise-rel 0.08] [-drop-rate 0.01]
//	         [-clamp-sigma 3] [-distill-alpha 0.5] [-csv out] [-quick]
package main

import (
	"flag"
	"fmt"
	"os"

	"nora/internal/analog"
	"nora/internal/cli"
	"nora/internal/harness"
	"nora/internal/model"
	"nora/internal/prof"
)

func main() {
	var opt cli.Options
	opt.RegisterFlags(flag.CommandLine)
	recipe := model.DefaultHWARecipe()
	csvPath := flag.String("csv", "", "also write results as CSV to this path")
	models := flag.String("models", "opt-c3,mistral-c", "comma-separated zoo keys")
	ages := flag.String("ages", "", "comma-separated deploy ages in seconds (default: E19 ladder + 1 year)")
	flag.IntVar(&recipe.Steps, "steps", recipe.Steps, "HWA fine-tune steps")
	flag.Float64Var(&recipe.NoiseRel, "noise-rel", recipe.NoiseRel, "injected output-noise std relative to max|y|")
	flag.Float64Var(&recipe.RampFrac, "ramp-frac", recipe.RampFrac, "fraction of training over which noise ramps 0→full")
	flag.Float64Var(&recipe.DropRate, "drop-rate", recipe.DropRate, "per-device stuck probability of drop-connect")
	flag.Float64Var(&recipe.ClampSigma, "clamp-sigma", recipe.ClampSigma, "weight clamp at ±sigma·RMS(W); 0 disables")
	flag.Float64Var(&recipe.DistillAlpha, "distill-alpha", recipe.DistillAlpha, "soft-target distillation weight; 0 disables")
	flag.Parse()
	if err := run(&opt, recipe, *csvPath, *models, *ages); err != nil {
		fmt.Fprintln(os.Stderr, err)
		os.Exit(1)
	}
}

func run(opt *cli.Options, recipe model.HWARecipe, csvPath, models, ages string) error {
	if err := opt.Finish(); err != nil {
		return err
	}

	stopProf := prof.Start()
	defer stopProf()

	ageLadder := harness.DefaultHWADriftAges()
	if opt.Quick {
		// Quick mode keeps the default recipe so the committed HWA
		// checkpoints cache-hit (no fine-tune in CI), and keeps the 1-year
		// point — it is the experiment's headline.
		ageLadder = []float64{0, 3600, harness.OneYearSeconds}
		models = "opt-c3"
		opt.QuickEval(30)
	}
	var err error
	if ages != "" {
		if ageLadder, err = cli.ParseFloats(ages); err != nil {
			return fmt.Errorf("-ages: %w", err)
		}
	}

	ws, err := opt.LoadModels(models)
	if err != nil {
		return err
	}

	eng := opt.NewEngine()
	base := analog.PaperPreset()

	rows, err := harness.HWASweep(eng, ws, opt.ModelDir, recipe, base, ageLadder)
	if err != nil {
		return err
	}
	tbl := harness.HWADriftTable(rows)
	if err := tbl.WriteText(os.Stdout); err != nil {
		return err
	}
	if csvPath != "" {
		if err := tbl.WriteCSVFile(csvPath); err != nil {
			return err
		}
	}
	fmt.Fprintln(os.Stderr, eng.Stats())
	return nil
}
